"""Double-buffered background prefetch for adjacency-list files.

:class:`~repro.graph.stream.FileStream` interleaves disk reads, parsing,
and scoring on one thread: while the partitioner scores a record, the
disk sits idle, and vice versa.  :class:`PrefetchStream` moves chunk
reading + tokenization onto a producer thread that stays a bounded
number of parsed segments ahead of the consumer (``depth=2`` — a double
buffer), so I/O and parsing overlap with the scoring kernels.  The
chunked tokenizer spends most of its time in NumPy calls that release
the GIL, which is what makes the overlap real on CPython.

The stream keeps the exact :class:`~repro.graph.stream._Seekable`
contract checkpoint/resume relies on: ``tell()``/``seek()`` are in
*record* units, iteration never moves the cursor, and a fresh iteration
after ``seek(p)`` delivers precisely the records a
:class:`~repro.graph.stream.FileStream` would deliver from ``p`` — byte
identical, including strict-mode error ordering and lenient quarantine
accounting (skipped records are dropped in the producer *after*
policy handling, so error budgets charge the same either way).

``ingest_stats()`` reports where wall-clock went: producer busy/blocked
seconds and consumer wait seconds, cumulative across iterations.  A
consumer-wait near zero means ingest is fully hidden behind scoring.
"""

from __future__ import annotations

import queue
import threading
import time
from pathlib import Path
from typing import Iterator

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import _Seekable
from .chunked import (
    DEFAULT_CHUNK_BYTES,
    iter_row_events,
    parse_adjacency_line,
    scan_adjacency_stats,
)

__all__ = ["PrefetchStream"]


class PrefetchStream(_Seekable):
    """Adjacency-file stream with background chunk parsing.

    Parameters
    ----------
    path:
        Adjacency-list file (``.gz`` transparently supported).
    num_vertices / num_edges:
        Stream totals; omitted values are discovered by one vectorized
        pre-scan (exactly like :class:`~repro.graph.stream.FileStream`).
    policy:
        Optional :class:`~repro.recovery.lenient.IngestionPolicy` for
        strict/lenient malformed-line handling.
    depth:
        Parsed segments the producer may run ahead (default 2: one being
        consumed, one in flight).
    chunk_bytes:
        Tokenizer block size, forwarded to :mod:`repro.ingest.chunked`.
    """

    def __init__(self, path: str | Path, *,
                 num_vertices: int | None = None,
                 num_edges: int | None = None,
                 policy=None, depth: int = 2,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self._path = Path(path)
        self._policy = policy
        self._depth = depth
        self._chunk_bytes = chunk_bytes
        self._ordered: bool | None = None
        self._num_records: int | None = None
        self._stats = {
            "producer_busy_seconds": 0.0,
            "producer_blocked_seconds": 0.0,
            "consumer_wait_seconds": 0.0,
            "records": 0,
            "segments": 0,
        }
        if num_vertices is None or num_edges is None:
            max_id, edge_count, ordered, rows = scan_adjacency_stats(
                self._path, policy=policy, chunk_bytes=chunk_bytes)
            self._ordered = ordered
            self._num_records = rows
            num_vertices = num_vertices if num_vertices is not None \
                else max_id + 1
            num_edges = num_edges if num_edges is not None else edge_count
        self._num_vertices = num_vertices
        self._num_edges = num_edges

    # -- VertexStream surface ------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def is_id_ordered(self) -> bool:
        """Whether record vertex ids are strictly increasing on disk."""
        if self._ordered is None:
            _, _, ordered, rows = scan_adjacency_stats(
                self._path, policy=self._policy,
                chunk_bytes=self._chunk_bytes)
            self._ordered = ordered
            self._num_records = rows
        return self._ordered

    def ingest_stats(self) -> dict:
        """Cumulative overlap accounting (see module docstring)."""
        return dict(self._stats)

    # -- producer ------------------------------------------------------
    def _put(self, out_q: queue.Queue, item, stop: threading.Event) -> bool:
        """Bounded put that aborts when the consumer went away."""
        blocked = time.perf_counter()
        while not stop.is_set():
            try:
                out_q.put(item, timeout=0.05)
                self._stats["producer_blocked_seconds"] += \
                    time.perf_counter() - blocked
                return True
            except queue.Full:
                continue
        return False

    def _produce(self, skip: int, out_q: queue.Queue,
                 stop: threading.Event) -> None:
        try:
            if self._policy is not None:
                self._policy.begin_scan(self._path)
            mark = time.perf_counter()
            for event in iter_row_events(self._path,
                                         chunk_bytes=self._chunk_bytes):
                if event[0] == "rows":
                    _, values, splits, _linenos, _chunk = event
                    nrows = len(splits) - 1
                    if skip >= nrows:
                        skip -= nrows
                        continue
                    if skip:
                        base = splits[skip]
                        values = values[base:]
                        splits = splits[skip:] - base
                        skip = 0
                    self._stats["segments"] += 1
                    self._stats["producer_busy_seconds"] += \
                        time.perf_counter() - mark
                    if not self._put(out_q, ("rows", (values, splits)),
                                     stop):
                        return
                    mark = time.perf_counter()
                else:
                    parsed = parse_adjacency_line(
                        self._path, event[1], event[2], self._policy)
                    if parsed is None:
                        continue
                    if skip:
                        skip -= 1
                        continue
                    self._stats["producer_busy_seconds"] += \
                        time.perf_counter() - mark
                    if not self._put(out_q, ("one", parsed), stop):
                        return
                    mark = time.perf_counter()
            self._stats["producer_busy_seconds"] += \
                time.perf_counter() - mark
            self._put(out_q, ("done", None), stop)
        except BaseException as exc:  # propagate to the consumer
            self._put(out_q, ("error", exc), stop)

    # -- consumer ------------------------------------------------------
    def __iter__(self) -> Iterator[AdjacencyRecord]:
        out_q: queue.Queue = queue.Queue(self._depth)
        stop = threading.Event()
        producer = threading.Thread(
            target=self._produce, args=(self._position, out_q, stop),
            name=f"prefetch:{self._path.name}", daemon=True)
        producer.start()
        stats = self._stats
        try:
            while True:
                waited = time.perf_counter()
                kind, payload = out_q.get()
                stats["consumer_wait_seconds"] += \
                    time.perf_counter() - waited
                if kind == "rows":
                    values, splits = payload
                    for r in range(len(splits) - 1):
                        lo = splits[r]
                        yield AdjacencyRecord(int(values[lo]),
                                              values[lo + 1:splits[r + 1]])
                    stats["records"] += len(splits) - 1
                elif kind == "one":
                    vertex, neighbors = payload
                    stats["records"] += 1
                    yield AdjacencyRecord(vertex, neighbors)
                elif kind == "done":
                    return
                else:
                    raise payload
        finally:
            stop.set()
            try:  # unblock a producer stuck on a full queue
                while True:
                    out_q.get_nowait()
            except queue.Empty:
                pass
            producer.join(timeout=5.0)
