"""Versioned binary CSR graph cache (``.reprocsr``).

Parsing a text edge list costs seconds per gigabyte even with the
chunked tokenizer; loading the same graph from its finished CSR arrays
costs a file map.  This module persists a parsed
:class:`~repro.graph.digraph.DiGraph` next to its source file and loads
it back zero-copy via ``mmap``, so every run after the first skips text
parsing entirely.  The file layout mirrors the snapshot codec
(:mod:`repro.recovery.snapshot`)::

    MAGIC (9 bytes)   b"REPROCSR\\x01"
    4-byte big-endian header length
    header JSON   {"format": "repro-csr", "version": 1,
                   "crc32": <crc of body>, "body_len": <bytes>,
                   "num_vertices": ..., "num_edges": ..., "name": ...,
                   "source": {"size": ..., "mtime_ns": ...} | null}
    body          indptr bytes (int64 LE) + indices bytes (int64 LE)

Integrity is layered exactly like snapshots: truncation fails the
``body_len`` check, corruption fails CRC32, and foreign/future files are
rejected by format name and version — all as :class:`GraphCacheError`
before any array reaches a partitioner.  Writes go through
:func:`repro.recovery.atomic.atomic_write_bytes`, so a crash mid-write
never tears an existing cache.

Freshness is keyed on the source file's ``(size, mtime_ns)`` recorded
at write time; :func:`load_or_parse` transparently falls back to a text
parse (and rewrites the cache) whenever the source changed or the cache
is damaged.

The ``mmap`` load is lazy *and* checked: the CRC is verified on the
mapped bytes before the arrays are returned, after which the OS pages
the arrays in on demand — repeat partitioning runs touch only the bytes
they stream.
"""

from __future__ import annotations

import json
import mmap
import struct
import zlib
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "CACHE_FORMAT",
    "CACHE_SUFFIX",
    "CACHE_VERSION",
    "GraphCacheError",
    "cache_path_for",
    "is_cache_fresh",
    "load_or_parse",
    "read_graph_cache",
    "write_graph_cache",
]

CACHE_FORMAT = "repro-csr"
CACHE_VERSION = 1
CACHE_SUFFIX = ".reprocsr"
_MAGIC = b"REPROCSR\x01"
_LEN = struct.Struct(">I")


class GraphCacheError(ValueError):
    """A graph cache file is torn, corrupted, stale, or foreign."""


def cache_path_for(source: str | Path) -> Path:
    """Sidecar cache path for a graph source file (``<file>.reprocsr``)."""
    source = Path(source)
    return source.with_name(source.name + CACHE_SUFFIX)


def _source_sig(source: str | Path) -> dict[str, int] | None:
    try:
        st = Path(source).stat()
    except OSError:
        return None
    return {"size": st.st_size, "mtime_ns": st.st_mtime_ns}


def write_graph_cache(path: str | Path, graph,
                      *, source: str | Path | None = None) -> None:
    """Persist ``graph``'s CSR arrays to ``path`` atomically.

    ``source`` (the text file the graph was parsed from) stamps the
    header with a freshness signature; omit it for graphs with no
    backing file.
    """
    from ..recovery.atomic import atomic_write_bytes
    indptr = np.ascontiguousarray(graph.indptr, dtype=np.int64)
    indices = np.ascontiguousarray(graph.indices, dtype=np.int64)
    if indptr.dtype.byteorder not in ("=", "<", "|"):  # pragma: no cover
        indptr = indptr.astype("<i8")
        indices = indices.astype("<i8")
    body = indptr.tobytes() + indices.tobytes()
    header = json.dumps({
        "format": CACHE_FORMAT,
        "version": CACHE_VERSION,
        "crc32": zlib.crc32(body),
        "body_len": len(body),
        "num_vertices": int(graph.num_vertices),
        "num_edges": int(graph.num_edges),
        "name": str(graph.name),
        "source": _source_sig(source) if source is not None else None,
    }, sort_keys=True).encode("utf-8")
    atomic_write_bytes(path, _MAGIC + _LEN.pack(len(header)) + header + body)


def _read_header(path: Path,
                 blob: bytes | mmap.mmap) -> tuple[dict[str, Any], int]:
    """Validate magic + header; returns ``(header, body_offset)``."""
    if len(blob) < len(_MAGIC) + _LEN.size \
            or bytes(blob[:len(_MAGIC)]) != _MAGIC:
        raise GraphCacheError(f"{path}: not a graph cache (bad magic)")
    offset = len(_MAGIC)
    (header_len,) = _LEN.unpack_from(blob, offset)
    offset += _LEN.size
    raw_header = bytes(blob[offset:offset + header_len])
    if len(raw_header) < header_len:
        raise GraphCacheError(f"{path}: truncated cache header")
    try:
        header = json.loads(raw_header.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GraphCacheError(
            f"{path}: unreadable cache header: {exc}") from exc
    if header.get("format") != CACHE_FORMAT:
        raise GraphCacheError(
            f"{path}: format {header.get('format')!r} is not "
            f"{CACHE_FORMAT!r}")
    if header.get("version") != CACHE_VERSION:
        raise GraphCacheError(
            f"{path}: cache version {header.get('version')!r} is not "
            f"supported (expected {CACHE_VERSION})")
    return header, offset + header_len


def read_graph_cache(path: str | Path, *, use_mmap: bool = True):
    """Load a cached graph; CRC-verified before any array is returned.

    With ``use_mmap`` (default) the CSR arrays are zero-copy views over
    a private read-only file mapping — the OS pages them in on demand
    and shares clean pages across processes.  Raises
    :class:`GraphCacheError` on any integrity violation.
    """
    from ..graph.digraph import DiGraph
    path = Path(path)
    if use_mmap:
        with open(path, "rb") as fh:
            try:
                buf: Any = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
            except (ValueError, OSError):  # empty file / no-mmap FS
                buf = fh.read()
    else:
        buf = path.read_bytes()
    header, body_offset = _read_header(path, buf)
    body = memoryview(buf)[body_offset:]
    if len(body) != header["body_len"]:
        raise GraphCacheError(
            f"{path}: truncated cache body ({len(body)} bytes, header "
            f"declares {header['body_len']})")
    if zlib.crc32(body) != header["crc32"]:
        raise GraphCacheError(f"{path}: cache body fails its CRC32 check")
    num_vertices = int(header["num_vertices"])
    num_edges = int(header["num_edges"])
    indptr_bytes = (num_vertices + 1) * 8
    if indptr_bytes + num_edges * 8 != header["body_len"]:
        raise GraphCacheError(
            f"{path}: header counts do not match body size")
    indptr = np.frombuffer(body, dtype="<i8", count=num_vertices + 1)
    indices = np.frombuffer(body, dtype="<i8", count=num_edges,
                            offset=indptr_bytes)
    if int(indptr[0]) != 0 or int(indptr[-1]) != num_edges:
        raise GraphCacheError(f"{path}: inconsistent CSR row pointers")
    return DiGraph(indptr, indices, name=header.get("name", path.stem))


def is_cache_fresh(cache: str | Path, source: str | Path) -> bool:
    """Whether ``cache`` exists and matches ``source``'s current state.

    A cache written without a source signature is never considered
    fresh relative to a source file; unreadable or foreign files are
    simply "not fresh" (callers fall back to parsing), never an error.
    """
    cache = Path(cache)
    try:
        with open(cache, "rb") as fh:
            head = fh.read(len(_MAGIC) + _LEN.size)
            if len(head) < len(_MAGIC) + _LEN.size \
                    or not head.startswith(_MAGIC):
                return False
            (header_len,) = _LEN.unpack_from(head, len(_MAGIC))
            raw_header = fh.read(header_len)
        header = json.loads(raw_header.decode("utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return False
    if header.get("format") != CACHE_FORMAT \
            or header.get("version") != CACHE_VERSION:
        return False
    return header.get("source") is not None \
        and header["source"] == _source_sig(source)


def load_or_parse(source: str | Path, *, cache: str | Path | bool = True,
                  policy=None, instrumentation=None, reader=None,
                  **read_kwargs):
    """Load ``source`` through the cache, parsing (and caching) on miss.

    ``cache=True`` uses the sidecar path from :func:`cache_path_for`;
    a path uses that file; ``False`` always parses.  Damaged or stale
    caches are rewritten after the fall-back parse.  ``reader``
    overrides the text parser (default
    :func:`repro.graph.io.read_adjacency` — pass ``read_edge_list`` for
    edge-list sources); ``read_kwargs`` are forwarded to it on a miss.

    Emits ``graph_cache_hit`` / ``graph_cache_miss`` instrumentation
    counters plus one ``ingest_phase`` trace record per completed stage
    (``cache_hit`` / ``parse`` / ``cache_write``) when an
    :class:`~repro.observability.instrumentation.Instrumentation` is
    supplied.
    """
    import time

    def _phase(name: str, elapsed: float, graph=None) -> None:
        if instrumentation is None:
            return
        record: dict[str, Any] = {
            "type": "ingest_phase",
            "phase": name,
            "source": str(source),
            "elapsed_seconds": float(elapsed),
        }
        if graph is not None:
            record["records"] = int(graph.num_vertices)
            record["bytes"] = int(graph.indptr.nbytes
                                  + graph.indices.nbytes)
        instrumentation.emit(record)

    if reader is None:
        from ..graph.io import read_adjacency as reader
    source = Path(source)
    if cache is False:
        t0 = time.perf_counter()
        graph = reader(source, policy=policy, **read_kwargs)
        _phase("parse", time.perf_counter() - t0, graph)
        return graph
    cache_path = cache_path_for(source) if cache is True else Path(cache)
    if is_cache_fresh(cache_path, source):
        t0 = time.perf_counter()
        try:
            graph = read_graph_cache(cache_path)
        except GraphCacheError:
            pass  # damaged cache: fall through to a parse + rewrite
        else:
            if instrumentation is not None:
                instrumentation.count("graph_cache_hit")
            _phase("cache_hit", time.perf_counter() - t0, graph)
            return graph
    t0 = time.perf_counter()
    graph = reader(source, policy=policy, **read_kwargs)
    _phase("parse", time.perf_counter() - t0, graph)
    if instrumentation is not None:
        instrumentation.count("graph_cache_miss")
    t0 = time.perf_counter()
    try:
        write_graph_cache(cache_path, graph, source=source)
    except OSError:  # read-only dir etc. — the parse still succeeded
        pass
    else:
        _phase("cache_write", time.perf_counter() - t0, graph)
    return graph
