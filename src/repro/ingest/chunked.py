"""Chunked, vectorized tokenizer for whitespace-delimited integer files.

The seed readers in :mod:`repro.graph.io` walked files one Python string
at a time: ``str.split`` plus an ``int()`` per token, i.e. two heap
allocations and an interpreter round-trip per number.  This module reads
the file in megabyte byte blocks instead and tokenizes each block with a
handful of NumPy passes:

1. classify every byte once through a 256-entry lookup table
   (digit / whitespace / newline / other);
2. locate newline positions → line starts and 1-based line numbers;
3. locate digit runs → token ``[start, end)`` spans;
4. evaluate all tokens at once: ``digit · 10^(end-1-i)`` per byte,
   reduced per run with ``np.add.reduceat``;
5. group tokens into rows by the line each token starts on.

Lines the vectorized path cannot prove clean — any byte that is neither
digit, whitespace, nor part of a comment line, or a digit run too long
for ``int64`` — fall back to the exact per-line logic of the seed
parser, preserving its error messages, its 1-based ``path, line N``
reporting, and the strict/lenient
:class:`~repro.recovery.lenient.IngestionPolicy` contract (including
signed integers and ``1_000``-style literals, which ``int()`` accepts
but the fast path does not).  Clean rows and fallback lines are
processed in file order, so strict mode still raises *before* any later
row is delivered.

Blocks are cut at the last newline and the partial tail line is carried
into the next block, so tokens never straddle a block boundary; a final
line without a trailing newline is handled by appending one.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, Iterator

import numpy as np

__all__ = [
    "DEFAULT_CHUNK_BYTES",
    "TokenChunk",
    "iter_adjacency_rows",
    "iter_edge_chunks",
    "iter_token_chunks",
    "scan_adjacency_stats",
]

#: Default block size fed to the tokenizer.  Large enough to amortize
#: the fixed per-block NumPy pass cost, small enough that the prefetch
#: reader's double buffer stays cache- and memory-friendly.
DEFAULT_CHUNK_BYTES = 1 << 20

# Byte classes for the tokenizer lookup table.
_OTHER, _DIGIT, _WS, _NL = 0, 1, 2, 3
_CLASS = np.zeros(256, dtype=np.uint8)
_CLASS[ord("0"):ord("9") + 1] = _DIGIT
for _b in (9, 11, 12, 13, 32):  # tab, VT, FF, CR, space — str.split()'s set
    _CLASS[_b] = _WS
_CLASS[10] = _NL

#: ``10**e`` for every in-range int64 exponent; token runs longer than 18
#: digits can overflow and are routed to the ``int()`` fallback instead.
_POW10 = 10 ** np.arange(19, dtype=np.int64)
_MAX_FAST_DIGITS = 18

_HASH, _PERCENT, _SLASH = ord("#"), ord("%"), ord("/")


def _open_binary(path: str | Path) -> IO[bytes]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rb")
    return open(path, "rb")


class TokenChunk:
    """All clean-row tokens of one block, plus fallback lines.

    Attributes
    ----------
    values:
        ``int64`` token values of every clean row, row-major.
    row_splits:
        CSR-style splits into ``values``: row ``r`` holds
        ``values[row_splits[r]:row_splits[r+1]]``.
    line_numbers:
        1-based file line number of each clean row.
    bad_lines:
        ``(line_number, raw_text)`` for every line the vectorized parse
        could not prove clean, in file order.  ``raw_text`` keeps its
        trailing newline so fallback error messages match the seed
        parser byte-for-byte.
    """

    __slots__ = ("values", "row_splits", "line_numbers", "bad_lines",
                 "_buf", "_line_starts", "_nl_pos", "_base_line")

    def __init__(self, values: np.ndarray, row_splits: np.ndarray,
                 line_numbers: np.ndarray,
                 bad_lines: list[tuple[int, str]], *,
                 buf: bytes, line_starts: np.ndarray, nl_pos: np.ndarray,
                 base_line: int) -> None:
        self.values = values
        self.row_splits = row_splits
        self.line_numbers = line_numbers
        self.bad_lines = bad_lines
        self._buf = buf
        self._line_starts = line_starts
        self._nl_pos = nl_pos
        self._base_line = base_line

    @property
    def num_rows(self) -> int:
        return len(self.row_splits) - 1

    def row(self, r: int) -> np.ndarray:
        """Zero-copy token view of clean row ``r``."""
        return self.values[self.row_splits[r]:self.row_splits[r + 1]]

    def raw_line(self, lineno: int) -> str:
        """Original text of 1-based file line ``lineno`` (with newline)."""
        i = lineno - self._base_line
        raw = self._buf[self._line_starts[i]:self._nl_pos[i] + 1]
        return raw.decode("utf-8", errors="replace")


def _iter_blocks(path: str | Path,
                 chunk_bytes: int) -> Iterator[tuple[bytes, int]]:
    """Yield ``(block, first_line_number)`` with newline-aligned blocks."""
    if chunk_bytes < 1:
        raise ValueError("chunk_bytes must be >= 1")
    base_line = 1
    carry = b""
    with _open_binary(path) as fh:
        while True:
            block = fh.read(chunk_bytes)
            if not block:
                break
            data = carry + block
            cut = data.rfind(b"\n")
            if cut < 0:
                carry = data
                continue
            buf = data[:cut + 1]
            yield buf, base_line
            base_line += buf.count(b"\n")
            carry = data[cut + 1:]
    if carry:
        yield carry + b"\n", base_line


def _tokenize_block(buf: bytes, base_line: int) -> TokenChunk:
    """Vectorized tokenization of one newline-terminated block."""
    data = np.frombuffer(buf, dtype=np.uint8)
    cls = _CLASS[data]
    nl_pos = np.flatnonzero(cls == _NL)
    n_lines = len(nl_pos)
    line_starts = np.empty(n_lines, dtype=np.int64)
    if n_lines:
        line_starts[0] = 0
        line_starts[1:] = nl_pos[:-1] + 1

    # Comment lines: first significant (non-ws) byte is '#', '%', or "//".
    sig_pos = np.flatnonzero((cls == _OTHER) | (cls == _DIGIT))
    sig_line = np.searchsorted(nl_pos, sig_pos)
    lines_with_sig, first_idx = np.unique(sig_line, return_index=True)
    first_sig = sig_pos[first_idx]
    first_byte = data[first_sig]
    # first_sig + 1 is always in range: every line ends with '\n'.
    is_comment = ((first_byte == _HASH) | (first_byte == _PERCENT)
                  | ((first_byte == _SLASH)
                     & (data[first_sig + 1] == _SLASH)))
    comment_mask = np.zeros(n_lines, dtype=bool)
    comment_mask[lines_with_sig[is_comment]] = True

    # Bad lines: any non-comment line holding a byte outside
    # digit/whitespace (signs, letters, floats, invalid encodings, ...).
    bad_mask = np.zeros(n_lines, dtype=bool)
    other_pos = np.flatnonzero(cls == _OTHER)
    if len(other_pos):
        bad_mask[np.searchsorted(nl_pos, other_pos)] = True

    # Token spans: maximal digit runs.
    is_digit = cls == _DIGIT
    shifted = np.empty_like(is_digit)
    shifted[0] = False
    shifted[1:] = is_digit[:-1]
    tok_start = np.flatnonzero(is_digit & ~shifted)
    shifted[-1] = False
    shifted[:-1] = is_digit[1:]
    tok_end = np.flatnonzero(is_digit & ~shifted) + 1
    lengths = tok_end - tok_start
    too_long = lengths > _MAX_FAST_DIGITS
    if too_long.any():  # may overflow int64: punt to int() per line
        bad_mask[np.searchsorted(nl_pos, tok_start[too_long])] = True
    bad_mask &= ~comment_mask

    if len(tok_start):
        digit_pos = np.flatnonzero(is_digit)
        digits = (data[digit_pos] - 48).astype(np.int64)
        exp = np.repeat(tok_end, lengths)
        np.subtract(exp, 1, out=exp)
        np.subtract(exp, digit_pos, out=exp)
        np.minimum(exp, _MAX_FAST_DIGITS, out=exp)  # clamp over-long runs
        np.multiply(digits, _POW10[exp], out=digits)
        values = np.add.reduceat(digits,
                                 np.searchsorted(digit_pos, tok_start))
        tok_line = np.searchsorted(nl_pos, tok_start)
        keep = ~(bad_mask[tok_line] | comment_mask[tok_line])
        values = values[keep]
        tok_line = tok_line[keep]
    else:
        values = np.empty(0, dtype=np.int64)
        tok_line = np.empty(0, dtype=np.int64)

    counts = np.bincount(tok_line, minlength=n_lines) if len(tok_line) \
        else np.zeros(n_lines, dtype=np.int64)
    row_lines = np.flatnonzero(counts)
    row_splits = np.zeros(len(row_lines) + 1, dtype=np.int64)
    np.cumsum(counts[row_lines], out=row_splits[1:])
    line_numbers = row_lines + base_line

    bad_lines: list[tuple[int, str]] = []
    for i in np.flatnonzero(bad_mask):
        raw = buf[line_starts[i]:nl_pos[i] + 1]
        bad_lines.append((int(base_line + i),
                          raw.decode("utf-8", errors="replace")))
    return TokenChunk(values, row_splits, line_numbers, bad_lines,
                      buf=buf, line_starts=line_starts, nl_pos=nl_pos,
                      base_line=base_line)


def iter_token_chunks(path: str | Path, *,
                      chunk_bytes: int = DEFAULT_CHUNK_BYTES
                      ) -> Iterator[TokenChunk]:
    """Tokenize ``path`` block by block (format-agnostic layer)."""
    for buf, base_line in _iter_blocks(path, chunk_bytes):
        yield _tokenize_block(buf, base_line)


def _segments(chunk: TokenChunk):
    """Split a chunk into file-ordered events around fallback lines.

    Yields ``("rows", values, row_splits, line_numbers)`` for maximal
    runs of clean rows and ``("bad", line_number, raw)`` for fallback
    lines, interleaved exactly as they appear in the file — strict-mode
    errors therefore fire before any later row is delivered, and lenient
    error budgets are charged in file order.
    """
    if not chunk.bad_lines:
        if chunk.num_rows:
            yield ("rows", chunk.values, chunk.row_splits,
                   chunk.line_numbers, chunk)
        return
    cuts = np.searchsorted(chunk.line_numbers,
                           [lineno for lineno, _ in chunk.bad_lines])
    prev = 0
    for (lineno, raw), cut in zip(chunk.bad_lines, cuts):
        if cut > prev:
            base = chunk.row_splits[prev]
            yield ("rows",
                   chunk.values[base:chunk.row_splits[cut]],
                   chunk.row_splits[prev:cut + 1] - base,
                   chunk.line_numbers[prev:cut], chunk)
            prev = cut
        yield ("bad", lineno, raw)
    if chunk.num_rows > prev:
        base = chunk.row_splits[prev]
        yield ("rows", chunk.values[base:],
               chunk.row_splits[prev:] - base,
               chunk.line_numbers[prev:], chunk)


def iter_row_events(path: str | Path, *,
                    chunk_bytes: int = DEFAULT_CHUNK_BYTES):
    """Flattened :func:`_segments` over every chunk of ``path``."""
    for chunk in iter_token_chunks(path, chunk_bytes=chunk_bytes):
        yield from _segments(chunk)


# ----------------------------------------------------------------------
# Fallback line handlers — the seed parser's exact per-line semantics.
# ----------------------------------------------------------------------
def parse_adjacency_line(path: str | Path, lineno: int, raw: str,
                         policy) -> tuple[int, np.ndarray] | None:
    """Parse one fallback line with the seed adjacency semantics.

    Returns the parsed ``(vertex, neighbors)`` when the line is actually
    valid (``int()`` accepts signs and ``_`` separators the fast path
    rejects), ``None`` when the line was quarantined, and raises for
    strict mode / blown error budgets.
    """
    try:
        parts = raw.split()
        vertex = int(parts[0])
        if vertex < 0:
            raise ValueError(f"negative vertex id {vertex}")
        neighbors = np.asarray([int(p) for p in parts[1:]],
                               dtype=np.int64)
        if len(neighbors) and neighbors.min() < 0:
            raise ValueError(
                f"negative neighbor id {int(neighbors.min())}")
    except ValueError as exc:
        if policy is None:
            raise ValueError(f"{path}, line {lineno}: {exc}") from exc
        policy.handle(path, lineno, raw, exc)
        return None
    return vertex, neighbors


def parse_edge_line(path: str | Path, lineno: int, raw: str,
                    policy) -> tuple[int, int] | None:
    """Parse one fallback line with the seed edge-list semantics."""
    try:
        parts = raw.split()
        if len(parts) < 2:
            raise ValueError(f"malformed edge line: {raw!r}")
        source, target = int(parts[0]), int(parts[1])
        if source < 0 or target < 0:
            # The seed reader hits this inside GraphBuilder.add_edge,
            # within its try block — so strict/lenient routing (and the
            # message) must match here too.
            raise ValueError("vertex ids must be non-negative")
        return source, target
    except ValueError as exc:
        if policy is None:
            raise ValueError(f"{path}, line {lineno}: {exc}") from exc
        policy.handle(path, lineno, raw, exc)
        return None


# ----------------------------------------------------------------------
# Format-aware iterators
# ----------------------------------------------------------------------
def iter_adjacency_rows(path: str | Path, *, policy=None,
                        chunk_bytes: int = DEFAULT_CHUNK_BYTES
                        ) -> Iterator[tuple[int, np.ndarray]]:
    """Stream ``(vertex, out-neighbors)`` rows via the chunked tokenizer.

    Drop-in replacement for the seed line-by-line
    ``iter_adjacency_lines``: same yield order, same strict/lenient
    behavior, same 1-based error locations; neighbor arrays are
    zero-copy ``int64`` views into the chunk's token buffer.
    """
    if policy is not None:
        policy.begin_scan(path)
    for event in iter_row_events(path, chunk_bytes=chunk_bytes):
        if event[0] == "rows":
            _, values, splits, _linenos, _chunk = event
            for r in range(len(splits) - 1):
                lo = splits[r]
                yield int(values[lo]), values[lo + 1:splits[r + 1]]
        else:
            parsed = parse_adjacency_line(path, event[1], event[2], policy)
            if parsed is not None:
                yield parsed


def iter_edge_chunks(path: str | Path, *, policy=None,
                     chunk_bytes: int = DEFAULT_CHUNK_BYTES
                     ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(sources, targets)`` array pairs from an edge-list file.

    Rows with a single column are malformed (seed behavior); columns
    past the second are ignored, exactly like the seed reader.
    """
    if policy is not None:
        policy.begin_scan(path)
    for event in iter_row_events(path, chunk_bytes=chunk_bytes):
        if event[0] == "rows":
            _, values, splits, linenos, chunk = event
            firsts = splits[:-1]
            counts = np.diff(splits)
            short = counts < 2
            if short.any():
                # Rare mixed segment: per-row fallback keeps the error
                # (or quarantine) ordering identical to the seed reader.
                src_parts: list[int] = []
                dst_parts: list[int] = []
                for r in range(len(counts)):
                    if short[r]:
                        raw = chunk.raw_line(int(linenos[r]))
                        parsed = parse_edge_line(path, int(linenos[r]),
                                                 raw, policy)
                        if parsed is None:
                            continue
                        src_parts.append(parsed[0])
                        dst_parts.append(parsed[1])
                    else:
                        src_parts.append(int(values[splits[r]]))
                        dst_parts.append(int(values[splits[r] + 1]))
                yield (np.asarray(src_parts, dtype=np.int64),
                       np.asarray(dst_parts, dtype=np.int64))
            else:
                yield values[firsts], values[firsts + 1]
        else:
            parsed = parse_edge_line(path, event[1], event[2], policy)
            if parsed is not None:
                yield (np.asarray([parsed[0]], dtype=np.int64),
                       np.asarray([parsed[1]], dtype=np.int64))


def scan_adjacency_stats(path: str | Path, *, policy=None,
                         chunk_bytes: int = DEFAULT_CHUNK_BYTES
                         ) -> tuple[int, int, bool, int]:
    """One chunked pass collecting ``(max_id, num_edges, ordered, rows)``.

    The vectorized twin of the :class:`~repro.graph.stream.FileStream`
    constructor pre-scan: ``max_id`` is the largest vertex/neighbor id
    seen (``-1`` for an empty file), ``num_edges`` the total neighbor
    count, ``ordered`` whether row vertex ids are strictly increasing,
    and ``rows`` the number of adjacency records.
    """
    if policy is not None:
        policy.begin_scan(path)
    max_id = -1
    num_edges = 0
    num_rows = 0
    ordered = True
    prev = -1
    for event in iter_row_events(path, chunk_bytes=chunk_bytes):
        if event[0] == "rows":
            _, values, splits, _linenos, _chunk = event
            if not len(values):
                continue
            vertices = values[splits[:-1]]
            max_id = max(max_id, int(values.max()))
            num_edges += int(len(values) - (len(splits) - 1))
            num_rows += len(splits) - 1
            if ordered:
                if int(vertices[0]) <= prev or (
                        len(vertices) > 1
                        and (np.diff(vertices) <= 0).any()):
                    ordered = False
            prev = int(vertices[-1])
        else:
            parsed = parse_adjacency_line(path, event[1], event[2], policy)
            if parsed is None:
                continue
            vertex, neighbors = parsed
            num_rows += 1
            max_id = max(max_id, vertex,
                         int(neighbors.max()) if len(neighbors) else -1)
            num_edges += len(neighbors)
            if vertex <= prev:
                ordered = False
            prev = vertex
    return max_id, num_edges, ordered, num_rows
