"""High-throughput graph ingestion: parse, cache, prefetch.

The streaming partitioners are now fast enough (see ``docs/performance.md``)
that end-to-end wall clock is dominated by getting adjacency records off
disk.  This package owns that path:

* :mod:`repro.ingest.chunked` — a chunked, NumPy-vectorized tokenizer for
  whitespace-delimited integer files (edge lists, adjacency lists) that
  replaces per-line Python parsing while preserving the strict/lenient
  error semantics and 1-based line numbers of :mod:`repro.graph.io`;
* :mod:`repro.ingest.cache` — a versioned, CRC-checked binary CSR cache
  (``.reprocsr``) with ``mmap``-backed zero-copy loads, so repeat runs
  skip text parsing entirely;
* :mod:`repro.ingest.prefetch` — a double-buffered background reader that
  overlaps disk I/O + parsing with partitioning, while keeping the
  record-unit ``tell()``/``seek()`` contract checkpoint/resume relies on.
"""

from importlib import import_module

# Submodule each public name lives in; resolved lazily (PEP 562) so that
# parse-only imports do not pay for mmap/threading machinery.
_EXPORTS = {
    "CACHE_SUFFIX": "cache",
    "GraphCacheError": "cache",
    "cache_path_for": "cache",
    "is_cache_fresh": "cache",
    "load_or_parse": "cache",
    "read_graph_cache": "cache",
    "write_graph_cache": "cache",
    "DEFAULT_CHUNK_BYTES": "chunked",
    "iter_adjacency_rows": "chunked",
    "iter_edge_chunks": "chunked",
    "scan_adjacency_stats": "chunked",
    "PrefetchStream": "prefetch",
}


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "CACHE_SUFFIX",
    "DEFAULT_CHUNK_BYTES",
    "GraphCacheError",
    "PrefetchStream",
    "cache_path_for",
    "is_cache_fresh",
    "iter_adjacency_rows",
    "iter_edge_chunks",
    "load_or_parse",
    "read_graph_cache",
    "scan_adjacency_stats",
    "write_graph_cache",
]
