"""Process-sharded parallel streaming partitioning (true multicore).

:class:`ProcessShardedPartitioner` is the multicore realization of the
paper's Sec. V-B design that the GIL denies
:class:`~repro.parallel.executor.ThreadedParallelPartitioner`: N worker
*processes* score adjacency records against a
``multiprocessing.shared_memory``-backed route table and vertex-major
(V, K) Γ lanes, while a sequential reader in the parent feeds record
groups through a bounded shared ring and applies every commit itself.

Execution model (one *group* = the paper's M concurrent records):

1. the parent assembles the next group — RCT-delayed records carried
   from the previous group first, then fresh records from the stream —
   and writes it into the next ring slot (vertices, CSR-packed
   neighbors, freshness flags);
2. all group vertices are registered in the shared RCT, then contiguous
   sub-ranges are dispatched to the workers, which score their records
   against the shared (group-start) state, note RCT conflicts into
   private per-worker lanes, and write length-K score vectors into the
   slot's score block;
3. after the barrier the parent folds the conflict lanes and replays
   the exact commit discipline of
   :class:`~repro.parallel.executor.SimulatedParallelPartitioner`:
   commits are applied group-by-group in the group's arrival order
   (id-sorted for the default id-ordered streams), deferring
   heavily-depended vertices up to ``max_delays`` times.

Because scoring is pure (workers write only their score block and
conflict lane) and all state mutation happens in the parent between
barriers, the result is **byte-identical** to the simulated executor at
the same ``parallelism`` — and byte-identical to the sequential record
path at ``parallelism=1`` — while the scoring work spreads over real
cores.  The registry-wide parity suite pins both properties.

Fault tolerance mirrors the threaded executor's supervision, extended
to processes: a worker that dies mid-group (even SIGKILL) is respawned
with bounded restarts and its sub-range re-dispatched — safe because
workers are idempotent (re-scoring rewrites the same deterministic
bytes) and no committed placement ever lives in a worker.  Checkpoints
compose with the recovery layer: at snapshot barriers the parent drains
all in-flight (carried) records, so a snapshot is exactly the
sequential triple (state, heuristic, position) and resuming is
byte-identical to the checkpointed run that never crashed.
"""

from __future__ import annotations

import copy
import itertools
import multiprocessing as mp
import time
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path
from typing import Any

import numpy as np

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import VertexStream, as_array_stream
from ..partitioning.base import StreamingPartitioner, StreamingResult
from ..recovery.checkpoint import (CheckpointConfig, Checkpointer,
                                   latest_snapshot)
from ..recovery.snapshot import read_snapshot
from .executor import _ParallelBase
from .shared import SharedArrayBlock, SharedConflictTable

__all__ = ["ProcessShardedPartitioner", "ShardedScorePool",
           "WorkerCrashedError"]


class WorkerCrashedError(RuntimeError):
    """A worker process died and the restart budget is exhausted."""


class _StreamMeta:
    """Picklable stream façade carrying only what ``_setup`` reads.

    Workers rebuild their partitioner clone against this instead of the
    real stream (which may hold open files, mmaps, or whole graphs):
    every ``_setup`` in the tree only consumes the totals and the
    id-order flag.
    """

    def __init__(self, stream: VertexStream) -> None:
        self.num_vertices = stream.num_vertices
        self.num_edges = stream.num_edges
        self.is_id_ordered = bool(getattr(stream, "is_id_ordered", False))
        arrays = as_array_stream(stream)
        if arrays is not None:
            self.max_degree: int | None = arrays.max_degree
        else:
            self.max_degree = getattr(stream, "max_degree", None)


def _worker_main(worker_id: int, template: StreamingPartitioner,
                 meta: _StreamMeta, spec, shm_name: str, use_rct: bool,
                 conn) -> None:
    """Score sub-ranges of ring slots until told to stop.

    The worker is *pure*: it reads the shared route/tallies/Γ lanes and
    the ring's record data, and writes only (a) its own RCT conflict
    lane and (b) the score block of the dispatched range.  Dying at any
    instruction therefore loses nothing the parent cannot redo.

    Results go back over the worker's **own** duplex pipe, never a
    shared queue: a worker SIGKILLed mid-``send`` leaves a torn pickle
    frame in its pipe, and on a shared channel that frame would wedge
    every later message from every surviving worker behind it.  With
    per-worker pipes the torn frame dies with the pipe — the parent
    sees EOF, respawns, and the replacement gets a fresh channel.
    """
    block = SharedArrayBlock.attach(shm_name, spec)
    views = block.views
    try:
        state = template.make_state(meta)
        template._setup(meta, state)
        state.route = views["route"]
        state.vertex_counts = views["vertex_counts"]
        state.edge_counts = views["edge_counts"]
        lane_keys = template.score_lanes() or {}
        template.attach_score_lanes(
            {key: views["lane_" + key] for key in lane_keys})
        in_flight = views["rct_inflight"]
        lane = views["rct_lanes"][worker_id] if use_rct else None
        ring_vertices = views["ring_vertices"]
        ring_indptr = views["ring_indptr"]
        ring_neighbors = views["ring_neighbors"]
        ring_fresh = views["ring_fresh"]
        ring_scores = views["ring_scores"]
        score = template._score
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                return
            _, slot, lo, hi, epoch = msg
            vertices = ring_vertices[slot]
            indptr = ring_indptr[slot]
            neighbors_flat = ring_neighbors[slot]
            fresh = ring_fresh[slot]
            scores_out = ring_scores[slot]
            try:
                for i in range(lo, hi):
                    neighbors = neighbors_flat[indptr[i]:indptr[i + 1]]
                    if use_rct and fresh[i] and neighbors.size:
                        # The paper piggybacks conflict detection on the
                        # neighbor traversal scoring already performs:
                        # any in-flight neighbor gets its dependency
                        # counter bumped — here into this worker's
                        # private lane, folded by the parent at the
                        # barrier (deterministic commutative sum).
                        hits = neighbors[in_flight[neighbors] != 0]
                        if hits.size:
                            np.add.at(lane, hits, 1)
                    record = AdjacencyRecord(int(vertices[i]), neighbors)
                    scores_out[i, :] = score(record, state)
            except Exception as exc:
                conn.send(("error", worker_id, slot, epoch, repr(exc)))
                return
            conn.send(("done", worker_id, slot, epoch))
    finally:
        block.close()


def _pool_spec(meta: _StreamMeta, lanes, *, num_partitions: int,
               group_max: int, num_workers: int, ring_slots: int):
    """The shared-segment layout for a scoring pool of this shape."""
    v = meta.num_vertices
    k = num_partitions
    m = group_max
    s = ring_slots
    w = num_workers
    if meta.max_degree is not None:
        ncap = min(meta.num_edges, m * meta.max_degree)
    else:
        ncap = meta.num_edges
    ncap = max(ncap, 1)
    spec = [
        ("route", (v,), np.int32),
        ("vertex_counts", (k,), np.int64),
        ("edge_counts", (k,), np.int64),
        ("rct_counts", (v,), np.int32),
        ("rct_inflight", (v,), np.uint8),
        ("rct_lanes", (w, v), np.int32),
        ("ring_vertices", (s, m), np.int64),
        ("ring_indptr", (s, m + 1), np.int64),
        ("ring_neighbors", (s, ncap), np.int64),
        ("ring_fresh", (s, m), np.uint8),
        ("ring_scores", (s, m, k), np.float64),
    ]
    for key in sorted(lanes):
        arr = lanes[key]
        spec.append(("lane_" + key, arr.shape, arr.dtype))
    return spec


class ShardedScorePool:
    """N scoring worker processes over one shared segment.

    The supervision machinery of :class:`ProcessShardedPartitioner` —
    spawn, respawn-with-budget, epoch-tagged redispatch, EOF-as-death
    barrier waits — extracted into a standalone pool so the placement
    service can shard its scoring over the same workers.  Consumers own
    the state and every commit; the pool owns the segment, the workers,
    and the per-group dispatch barrier.

    One call to :meth:`score_group` scores up to ``group_max`` records
    against the shared group-start state and returns the ``(n, K)``
    score block.  Scoring is pure (workers write only their conflict
    lane and score range), so a SIGKILLed worker is respawned and its
    sub-range re-scored with byte-identical results, invisible to the
    caller until the restart budget runs out
    (:class:`WorkerCrashedError`).

    A ``barrier_hook`` attribute (``callable(group_index, processes)``
    or ``None``) runs after each dispatch, before the barrier wait —
    the chaos suites use it to SIGKILL workers mid-group.
    """

    def __init__(self, template: StreamingPartitioner, meta: _StreamMeta,
                 lanes, *, group_max: int, num_workers: int,
                 use_rct: bool = True, rct_capacity: int | None = None,
                 ring_slots: int = 2, max_worker_restarts: int = 2,
                 restart_backoff: float = 0.05,
                 worker_timeout: float = 120.0,
                 mp_context: str | None = None,
                 instrumentation=None) -> None:
        if group_max < 1:
            raise ValueError("group_max must be >= 1")
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        if use_rct and (rct_capacity is None or rct_capacity < 1):
            raise ValueError("use_rct requires rct_capacity >= 1")
        self.template = template
        self.meta = meta
        self.lane_keys = sorted(lanes)
        self.group_max = group_max
        self.num_workers = num_workers
        self.use_rct = use_rct
        self.ring_slots = ring_slots
        self.max_worker_restarts = max_worker_restarts
        self.restart_backoff = restart_backoff
        self.worker_timeout = worker_timeout
        self.instrumentation = instrumentation
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._ctx = mp.get_context(mp_context)
        self.spec = _pool_spec(
            meta, lanes, num_partitions=template.num_partitions,
            group_max=group_max, num_workers=num_workers,
            ring_slots=ring_slots)
        self.block = SharedArrayBlock.create(self.spec)
        try:
            views = self.block.views
            self.rct = SharedConflictTable(
                views["rct_counts"], views["rct_inflight"],
                views["rct_lanes"], capacity=rct_capacity) \
                if use_rct else None
        except BaseException:
            self.block.close()
            raise
        self._procs: list[Any] = [None] * num_workers
        self._conns: list[Any] = [None] * num_workers
        self._epoch_seq = itertools.count(1)
        self.restarts = 0
        self._last_error: list[str] = []
        self._group_index = 0
        self.barrier_hook = None
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def views(self) -> dict[str, np.ndarray]:
        return self.block.views

    @property
    def neighbor_capacity(self) -> int:
        """Flat neighbor slots one ring slot holds (the chunk budget)."""
        return int(self.views["ring_neighbors"].shape[1])

    def worker_processes(self) -> list[Any]:
        """Live process handles, indexed by worker id (None = unspawned)."""
        return self._procs

    def bind_state(self, state, base: StreamingPartitioner, lanes) -> None:
        """Move the canonical state into the segment and rebind views."""
        views = self.views
        np.copyto(views["route"], state.route)
        state.route = views["route"]
        np.copyto(views["vertex_counts"], state.vertex_counts)
        state.vertex_counts = views["vertex_counts"]
        np.copyto(views["edge_counts"], state.edge_counts)
        state.edge_counts = views["edge_counts"]
        for key, arr in lanes.items():
            np.copyto(views["lane_" + key], arr)
        base.attach_score_lanes(
            {key: views["lane_" + key] for key in lanes})

    def detach_state(self, state, base: StreamingPartitioner) -> None:
        """Rebind state and lanes to private copies outliving the segment."""
        views = self.views
        state.route = np.array(views["route"])
        state.vertex_counts = np.array(views["vertex_counts"])
        state.edge_counts = np.array(views["edge_counts"])
        base.attach_score_lanes(
            {key: np.array(views["lane_" + key])
             for key in self.lane_keys})
        if self.rct is not None:
            self.rct.counts = np.array(self.rct.counts)
            self.rct.in_flight = np.array(self.rct.in_flight)
            self.rct.lanes = np.array(self.rct.lanes)

    def prewarm(self) -> None:
        """Spawn every worker now (serving wants no first-request stall)."""
        for worker_id in range(self.num_workers):
            if self._procs[worker_id] is None:
                self._spawn(worker_id)

    def reset(self) -> None:
        """Terminate all workers and restore the restart budget.

        The service's recovery path uses this after a
        :class:`WorkerCrashedError` left the pool unusable: surviving
        workers may still hold stale dispatches, so everything is torn
        down and respawned lazily on the next group.
        """
        self._stop_workers()
        self._procs = [None] * self.num_workers
        self._conns = [None] * self.num_workers
        self.restarts = 0
        self._last_error.clear()

    # ------------------------------------------------------------------
    def _spawn(self, worker_id: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, self.template, self.meta, self.spec,
                  self.block.name, self.rct is not None, child_conn),
            name=f"shard-worker-{worker_id}", daemon=True)
        proc.start()
        child_conn.close()
        if self._conns[worker_id] is not None:
            self._conns[worker_id].close()
        self._procs[worker_id], self._conns[worker_id] = proc, parent_conn

    def _respawn(self, worker_id: int, reason: str) -> None:
        if self.restarts >= self.max_worker_restarts:
            raise WorkerCrashedError(
                f"worker {worker_id} died ({reason}) and the "
                f"restart budget ({self.max_worker_restarts}) is "
                "exhausted"
                + (f"; last worker error: {self._last_error[-1]}"
                   if self._last_error else ""))
        self.restarts += 1
        if self.rct is not None:
            # Discard the dead worker's partial conflict notes; the
            # replacement redoes the whole sub-range, keeping the
            # barrier fold exactly-once.
            self.rct.clear_lane(worker_id)
        backoff = self.restart_backoff * 2 ** (self.restarts - 1)
        if backoff:
            time.sleep(backoff)
        self._spawn(worker_id)
        if self.instrumentation is not None:
            self.instrumentation.count("parallel.worker_restarts")
            self.instrumentation.emit({
                "type": "worker_restart",
                "worker": worker_id,
                "restarts": self.restarts,
                "error": reason,
                "backoff_seconds": backoff,
            })

    def _redispatch(self, worker_id: int, slot: int, outstanding,
                    reason: str) -> None:
        lo, hi, _ = outstanding[worker_id]
        self._respawn(worker_id, reason)
        eid = next(self._epoch_seq)
        self._conns[worker_id].send(("score", slot, lo, hi, eid))
        outstanding[worker_id] = (lo, hi, eid)

    def _dispatch_and_wait(self, slot: int, count: int) -> None:
        procs, conns = self._procs, self._conns
        active = min(self.num_workers, count)
        outstanding: dict[int, tuple[int, int, int]] = {}
        for worker_id in range(active):
            lo = worker_id * count // active
            hi = (worker_id + 1) * count // active
            if lo >= hi:
                continue
            if procs[worker_id] is None:
                self._spawn(worker_id)
            elif not procs[worker_id].is_alive():
                self._respawn(worker_id, "died between groups")
            eid = next(self._epoch_seq)
            conns[worker_id].send(("score", slot, lo, hi, eid))
            outstanding[worker_id] = (lo, hi, eid)
        if self.barrier_hook is not None:
            self.barrier_hook(self._group_index, procs)
        deadline = time.monotonic() + self.worker_timeout
        while outstanding:
            by_conn = {conns[w]: w for w in outstanding}
            # A dead worker's pipe hits EOF, so ``wait`` wakes for
            # deaths as well as results — no liveness polling.
            ready = _wait_connections(list(by_conn), timeout=0.05)
            if not ready:
                if time.monotonic() > deadline:
                    raise WorkerCrashedError(
                        f"workers {sorted(outstanding)} made no "
                        f"progress for {self.worker_timeout}s")
                continue
            for conn in ready:
                worker_id = by_conn[conn]
                if worker_id not in outstanding \
                        or conns[worker_id] is not conn:
                    continue  # replaced earlier in this sweep
                try:
                    msg = conn.recv()
                except (EOFError, OSError):
                    # Killed mid-group — possibly mid-send, leaving
                    # a torn frame; the pipe dies with the worker.
                    self._redispatch(worker_id, slot, outstanding,
                                     "killed mid-group")
                    deadline = time.monotonic() + self.worker_timeout
                    continue
                expected = outstanding[worker_id]
                if msg[0] == "done":
                    _, _, mslot, meid = msg
                    if expected[2] == meid and mslot == slot:
                        outstanding.pop(worker_id)
                        deadline = time.monotonic() + self.worker_timeout
                else:  # ("error", worker, slot, epoch, repr)
                    _, _, _, meid, err = msg
                    if expected[2] == meid:
                        self._last_error.append(err)
                        self._redispatch(worker_id, slot, outstanding,
                                         f"scoring error: {err}")
                        deadline = time.monotonic() + self.worker_timeout

    # ------------------------------------------------------------------
    def score_group(self, batch, fresh=None) -> np.ndarray:
        """Score ``batch`` (``AdjacencyRecord`` seq) against shared state.

        Writes the group into the next ring slot, shards it over the
        workers, and blocks at the barrier.  ``fresh`` optionally flags
        which records should note RCT conflicts (all of them when
        omitted); ignored by workers unless the pool runs with an RCT.
        Returns the slot's ``(len(batch), K)`` score view — valid until
        the slot is reused, ``ring_slots`` groups later.
        """
        count = len(batch)
        if count == 0:
            return self.views["ring_scores"][0][:0]
        if count > self.group_max:
            raise ValueError(
                f"group of {count} exceeds group_max={self.group_max}")
        views = self.views
        slot = self._group_index % self.ring_slots
        ring_vertices = views["ring_vertices"]
        ring_neighbors = views["ring_neighbors"]
        ring_fresh = views["ring_fresh"]
        indptr = views["ring_indptr"][slot]
        offset = 0
        indptr[0] = 0
        for i, record in enumerate(batch):
            ring_vertices[slot, i] = record.vertex
            degree = len(record.neighbors)
            ring_neighbors[slot, offset:offset + degree] = record.neighbors
            offset += degree
            indptr[i + 1] = offset
            ring_fresh[slot, i] = 1 if fresh is None else \
                (1 if fresh[i] else 0)
        self._dispatch_and_wait(slot, count)
        self._group_index += 1
        return views["ring_scores"][slot][:count]

    # ------------------------------------------------------------------
    def _stop_workers(self) -> None:
        for conn, proc in zip(self._conns, self._procs):
            if conn is not None:
                try:
                    if proc is not None and proc.is_alive():
                        conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for conn in self._conns:
            if conn is not None:
                conn.close()

    def close(self) -> None:
        """Stop workers and release the segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._stop_workers()
        self.block.close()

    def __enter__(self) -> "ShardedScorePool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessShardedPartitioner(_ParallelBase):
    """M-way concurrent placement sharded over N worker processes.

    Parameters
    ----------
    base:
        The wrapped streaming heuristic.  It must declare its mutable
        score state via
        :meth:`~repro.partitioning.base.StreamingPartitioner
        .score_lanes` (ldg/fennel/spn/spnl with the dense or hashed Γ
        store do; the sliding-window store is refused — its rotation
        cursor is inherently sequential).
    parallelism:
        The paper's M — records scored concurrently per group.  This is
        the *semantic* knob: results are byte-identical to
        :class:`~repro.parallel.executor.SimulatedParallelPartitioner`
        at the same value, regardless of ``num_workers``.
    num_workers:
        Worker processes the group is sharded over (the *throughput*
        knob).  Default: ``min(parallelism, usable CPUs)``.
    epsilon, use_rct, max_delays:
        As in the other executors (RCT capacity ``ε·M``, delay budget).
    ring_slots:
        Slots in the bounded shared ring (≥ 1).  Slots are cycled
        round-robin; each holds one group's records and score block.
    max_worker_restarts, restart_backoff:
        Supervision budget for dead workers (including SIGKILL) with
        exponential backoff, mirroring the threaded executor.
    worker_timeout:
        Seconds a live worker may stay silent on a dispatched range
        before the run aborts (guards against hung workers; deaths are
        detected much sooner via liveness checks).
    mp_context:
        ``multiprocessing`` start method (default: ``fork`` when
        available, else ``spawn``).

    A ``barrier_hook`` attribute (``callable(group_index, processes)``
    or ``None``) runs after each dispatch, before the barrier wait —
    the chaos suite uses it to SIGKILL workers mid-group.
    """

    def __init__(self, base: StreamingPartitioner, *, parallelism: int = 4,
                 num_workers: int | None = None, epsilon: int = 2,
                 use_rct: bool = True, max_delays: int = 3,
                 ring_slots: int = 2, max_worker_restarts: int = 2,
                 restart_backoff: float = 0.05,
                 worker_timeout: float = 120.0,
                 mp_context: str | None = None) -> None:
        super().__init__(base, parallelism=parallelism, epsilon=epsilon,
                         use_rct=use_rct, max_delays=max_delays)
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        if max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if restart_backoff < 0:
            raise ValueError("restart_backoff must be >= 0")
        if worker_timeout <= 0:
            raise ValueError("worker_timeout must be > 0")
        if num_workers is None:
            import os
            cpus = os.cpu_count() or 1
            num_workers = max(1, min(parallelism, cpus))
        self.num_workers = num_workers
        self.ring_slots = ring_slots
        self.max_worker_restarts = max_worker_restarts
        self.restart_backoff = restart_backoff
        self.worker_timeout = worker_timeout
        if mp_context is None:
            methods = mp.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self.mp_context = mp_context
        self.barrier_hook = None

    @property
    def name(self) -> str:
        return f"{self.base.name}-par{self.parallelism}" \
            f"(proc{self.num_workers})"

    # ------------------------------------------------------------------
    def partition(self, stream: VertexStream, *,
                  instrumentation=None) -> StreamingResult:
        return self._run(stream, instrumentation=instrumentation)

    def partition_with_checkpoints(
            self, stream: VertexStream,
            config: CheckpointConfig | str | Path, *,
            every: int | None = None, keep: int | None = None,
            instrumentation=None) -> StreamingResult:
        """One sharded pass with a snapshot every ``config.every`` records.

        Snapshots are taken at group boundaries: the parent drains every
        carried (in-flight) record first, so the snapshot is the plain
        sequential triple — interchangeable with the recovery layer's
        (a crashed sharded run can even be resumed sequentially).
        Draining may commit a delayed record earlier than the
        uninterrupted run would have, so a checkpointed run is
        byte-identical to its *resumed* runs, not necessarily to an
        uncheckpointed one.
        """
        config = _as_config(config, every, keep)
        return self._run(stream, instrumentation=instrumentation,
                         ckpt_config=config)

    def resume_partition(
            self, stream: VertexStream, snapshot: str | Path, *,
            config: CheckpointConfig | str | Path | None = None,
            every: int | None = None, keep: int | None = None,
            instrumentation=None) -> StreamingResult:
        """Finish a crashed sharded pass from ``snapshot``.

        Byte-identical to the checkpointed run that never crashed: the
        snapshot was taken at a drained group boundary, so resuming
        restarts with an empty RCT and the same group sequence.
        """
        snapshot = Path(snapshot)
        if snapshot.is_dir():
            found = latest_snapshot(snapshot)
            if found is None:
                raise FileNotFoundError(
                    f"no ckpt-*.snap snapshots in {snapshot}")
            snapshot = found
        payload = read_snapshot(snapshot)
        if config is None:
            config = snapshot.parent
        config = _as_config(config, every, keep)
        return self._run(stream, instrumentation=instrumentation,
                         ckpt_config=config, resume_payload=payload,
                         resumed_from=str(snapshot))

    # ------------------------------------------------------------------
    def _run(self, stream: VertexStream, *, instrumentation=None,
             ckpt_config: CheckpointConfig | None = None,
             resume_payload: dict[str, Any] | None = None,
             resumed_from: str | None = None) -> StreamingResult:
        base = self.base
        # Pristine clone for the workers, taken before _setup allocates
        # the big per-run structures (each worker runs its own _setup
        # against the stream façade and attaches the shared lanes).
        template = copy.deepcopy(base)
        base_elapsed = 0.0
        if resume_payload is not None:
            position = int(resume_payload["position"])
            if not hasattr(stream, "seek"):
                raise TypeError(
                    f"cannot resume on a non-seekable stream "
                    f"({type(stream).__name__})")
            state = base.load_state(stream, resume_payload)
            stream.seek(position)
            base_elapsed = float(
                resume_payload.get("elapsed_seconds", 0.0))
            if instrumentation is not None:
                instrumentation.count("resumes")
                instrumentation.emit({
                    "type": "resume",
                    "position": position,
                    "placements": int(state.placed_vertices),
                    "path": resumed_from,
                    "partitioner": base.name,
                })
        else:
            state = base.make_state(stream)
            base._setup(stream, state)
        lanes = base.score_lanes()
        if lanes is None:
            raise ValueError(
                f"{base.name} does not declare shared score lanes and "
                "cannot run process-sharded (sliding-window Γ stores "
                "are sequential by design; use gamma_store='dense' or "
                "'hashed')")

        meta = _StreamMeta(stream)
        pool = ShardedScorePool(
            template, meta, lanes,
            group_max=self.parallelism, num_workers=self.num_workers,
            use_rct=self.use_rct,
            rct_capacity=self.epsilon * self.parallelism
            if self.use_rct else None,
            ring_slots=self.ring_slots,
            max_worker_restarts=self.max_worker_restarts,
            restart_backoff=self.restart_backoff,
            worker_timeout=self.worker_timeout,
            mp_context=self.mp_context,
            instrumentation=instrumentation)
        pool.barrier_hook = self.barrier_hook
        try:
            return self._drive(
                stream, state, lanes, pool,
                instrumentation=instrumentation, ckpt_config=ckpt_config,
                base_elapsed=base_elapsed, resumed_from=resumed_from)
        finally:
            pool.close()

    # ------------------------------------------------------------------
    def _build_spec(self, meta: _StreamMeta, lanes: dict[str, np.ndarray]):
        return _pool_spec(meta, lanes, num_partitions=self.num_partitions,
                          group_max=self.parallelism,
                          num_workers=self.num_workers,
                          ring_slots=self.ring_slots)

    # ------------------------------------------------------------------
    def _drive(self, stream, state, lanes, pool: ShardedScorePool, *,
               instrumentation, ckpt_config, base_elapsed,
               resumed_from) -> StreamingResult:
        base = self.base
        pool.bind_state(state, base, lanes)
        rct = pool.rct

        # -- the group loop --------------------------------------------
        probe = instrumentation.stream_probe(base, state) \
            if instrumentation is not None else None
        ckpt = Checkpointer(base, ckpt_config,
                            instrumentation=instrumentation) \
            if ckpt_config is not None else None
        total = stream.num_vertices
        consumed = stream.tell() if hasattr(stream, "tell") else 0
        next_ckpt = consumed + ckpt_config.every if ckpt else None
        delayed_total = 0
        group_index = 0
        carried: list[tuple[AdjacencyRecord, int]] = []
        iterator = iter(stream)
        exhausted = [False]
        elapsed = base_elapsed
        seg_start = time.perf_counter()

        def process_group(batch: list[tuple[AdjacencyRecord, int]]) -> None:
            nonlocal delayed_total, group_index, carried
            if rct is not None:
                for record, _ in batch:
                    rct.register(record.vertex)
            scores_block = pool.score_group(
                [record for record, _ in batch],
                fresh=[delays == 0 for _, delays in batch])
            if rct is not None:
                rct.fold_lanes()
            # Commit phase — the simulated executor's discipline, verbatim.
            batch_delayed = 0
            for i, (record, delays) in enumerate(batch):
                if (rct is not None and delays < self.max_delays
                        and rct.should_delay(record.vertex)):
                    carried.append((record, delays + 1))
                    delayed_total += 1
                    batch_delayed += 1
                    continue
                scores = scores_block[i]
                if probe is None:
                    pid = base.choose(scores, state)
                else:
                    pid, margin = base.choose_with_margin(scores, state)
                state.commit(record, pid)
                base._after_commit(record, pid, state)
                if probe is not None:
                    probe.observe(record, pid, margin)
                if rct is not None:
                    rct.remove(record.vertex)
                    rct.release_references(record.neighbors)
            group_index += 1
            if instrumentation is not None:
                instrumentation.emit({
                    "type": "parallel_group",
                    "group": group_index,
                    "batch_size": len(batch),
                    "delayed": batch_delayed,
                    "placements": int(state.placed_vertices),
                    "workers": self.num_workers,
                })

        while not exhausted[0] or carried:
            batch = carried
            carried = []
            while len(batch) < self.parallelism and not exhausted[0]:
                try:
                    batch.append((next(iterator), 0))
                    consumed += 1
                except StopIteration:
                    exhausted[0] = True
            if not batch:
                break
            process_group(batch)
            if ckpt is not None and consumed < total \
                    and consumed >= next_ckpt:
                # Snapshot barrier: drain every in-flight record so the
                # snapshot is a plain sequential (state, position) pair.
                while carried:
                    drain, carried = carried, []
                    process_group(drain)
                elapsed += time.perf_counter() - seg_start
                ckpt.save(state, consumed, elapsed)
                seg_start = time.perf_counter()
                next_ckpt = consumed + ckpt_config.every

        elapsed += time.perf_counter() - seg_start
        if probe is not None:
            probe.finish(elapsed)
            instrumentation.count("parallel.delayed", delayed_total)
            if rct is not None:
                instrumentation.gauge("parallel.conflicts",
                                      rct.total_conflicts)

        assignment = state.to_assignment()
        stats = self._stats(rct, delayed_total, state)
        stats.update(
            num_workers=self.num_workers,
            worker_restarts=pool.restarts,
            groups=group_index,
        )
        if ckpt is not None:
            stats["checkpoints_written"] = ckpt.snapshots_written
        if resumed_from is not None:
            stats["resumed_from"] = resumed_from

        # Detach: rebind the canonical state and the heuristic's lanes
        # onto private copies so both outlive the shared segment (the
        # caller may inspect the Γ store after the run).
        pool.detach_state(state, base)

        return StreamingResult(
            assignment=assignment,
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=base.num_partitions,
            stats=stats,
        )


def _as_config(config: CheckpointConfig | str | Path,
               every: int | None, keep: int | None) -> CheckpointConfig:
    if isinstance(config, CheckpointConfig):
        return config
    kwargs: dict[str, Any] = {}
    if every is not None:
        kwargs["every"] = every
    if keep is not None:
        kwargs["keep"] = keep
    return CheckpointConfig(Path(config), **kwargs)
