"""Hash-based Reversed-Counting-Table (RCT) for dependency detection.

Paper Sec. V-B: when M adjacency records are scored concurrently, records
that are adjacent to *each other* lose the heuristic guidance a serial
stream provides (the earlier record's placement would have informed the
later one).  The RCT detects these conflicts in O(1) per neighbor lookup:

* every in-flight vertex registers itself in the table;
* while a worker traverses ``N_out(v)`` to score ``v``, any out-neighbor
  ``u`` found in the table gets its dependency counter incremented — this
  piggybacks on the traversal the score computation already performs, so
  "no additional runtime cost is incurred";
* when ``u``'s own score is ready, the worker consults ``u``'s counter:
  above the threshold (default: the mean of non-zero counters), ``u``'s
  placement is *delayed* until the counter drains as its in-flight
  dependencies commit; otherwise ``u`` is removed and placed immediately.

The table holds at most ``ε·M`` entries (``ε`` bounds how many delayed
vertices each of the M workers may park).
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["ReversedCountingTable"]


class ReversedCountingTable:
    """Bounded concurrent map ``vertex id -> dependency counter``.

    Thread-safe; all operations are O(1) expected (one dict access under
    a lock).  ``capacity = ε·M`` as in the paper.
    """

    def __init__(self, parallelism: int, *, epsilon: int = 2) -> None:
        if parallelism < 1 or epsilon < 1:
            raise ValueError("parallelism and epsilon must be >= 1")
        self.parallelism = parallelism
        self.epsilon = epsilon
        self.capacity = epsilon * parallelism
        self._counts: dict[int, int] = {}
        self._lock = threading.Lock()
        # Diagnostics for the parallel benchmarks.
        self.total_conflicts = 0
        self.total_delays = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._counts)

    # ------------------------------------------------------------------
    def register(self, vertex: int) -> bool:
        """Enter ``vertex`` as in-flight; False if the table is full."""
        with self._lock:
            if vertex in self._counts:
                return True
            if len(self._counts) >= self.capacity:
                return False
            self._counts[vertex] = 0
            return True

    def note_references(self, neighbors: np.ndarray | list[int]) -> int:
        """Bump counters of every in-flight vertex among ``neighbors``.

        Called during score computation's neighbor traversal; returns how
        many conflicts were recorded.
        """
        hits = 0
        with self._lock:
            for u in neighbors:
                u = int(u)
                if u in self._counts:
                    self._counts[u] += 1
                    hits += 1
            self.total_conflicts += hits
        return hits

    def release_references(self, neighbors: np.ndarray | list[int]) -> None:
        """Drain counters once the referencing vertex has committed."""
        with self._lock:
            for u in neighbors:
                u = int(u)
                count = self._counts.get(u)
                if count is not None and count > 0:
                    self._counts[u] = count - 1

    def dependency_of(self, vertex: int) -> int:
        """Current dependency counter of ``vertex`` (0 if absent)."""
        with self._lock:
            return self._counts.get(vertex, 0)

    def threshold(self) -> float:
        """The paper's default delay threshold: mean of non-zero counters."""
        with self._lock:
            nonzero = [c for c in self._counts.values() if c > 0]
        if not nonzero:
            return float("inf")
        return float(np.mean(nonzero))

    def should_delay(self, vertex: int) -> bool:
        """True when ``vertex``'s dependency exceeds the live threshold."""
        with self._lock:
            count = self._counts.get(vertex, 0)
            nonzero = [c for c in self._counts.values() if c > 0]
        if count == 0 or not nonzero:
            return False
        delay = count > float(np.mean(nonzero))
        if delay:
            with self._lock:
                self.total_delays += 1
        return delay

    def remove(self, vertex: int) -> None:
        """Drop ``vertex`` from the table (it has been placed)."""
        with self._lock:
            self._counts.pop(vertex, None)
