"""Parallel streaming partitioning with RCT dependency detection."""

from .executor import SimulatedParallelPartitioner, ThreadedParallelPartitioner
from .rct import ReversedCountingTable

__all__ = [
    "ReversedCountingTable",
    "SimulatedParallelPartitioner",
    "ThreadedParallelPartitioner",
]
