"""Parallel streaming partitioning with RCT dependency detection."""

from .executor import SimulatedParallelPartitioner, ThreadedParallelPartitioner
from .process import ProcessShardedPartitioner, WorkerCrashedError
from .rct import ReversedCountingTable
from .shared import SharedArrayBlock, SharedConflictTable

__all__ = [
    "ProcessShardedPartitioner",
    "ReversedCountingTable",
    "SharedArrayBlock",
    "SharedConflictTable",
    "SimulatedParallelPartitioner",
    "ThreadedParallelPartitioner",
    "WorkerCrashedError",
]
