"""Parallel streaming partitioning (paper Sec. V-B).

The paper parallelizes the *score computation* of M concurrent adjacency
records over a producer–consumer buffer in shared memory, keeping the data
load sequential.  Concurrent records that are adjacent to each other lose
serial heuristic guidance; the RCT (:mod:`repro.parallel.rct`) detects such
dependencies and *delays* heavily-depended-on vertices until their
dependencies commit, which the paper shows caps the parallel quality
degradation at ~6 % (2 % average) versus up to 47 % for XtraPuLP.

Two executors are provided:

* :class:`SimulatedParallelPartitioner` — a **deterministic** model of
  concurrent placement: records are processed in batches of M; all M are
  scored against the state as of batch start (exactly the stale view real
  workers race on), then committed in order; RCT-delayed records carry
  over to the next batch.  Because it is deterministic and
  machine-independent, this is what the quality experiments (Table V,
  ablations) run on.
* :class:`ThreadedParallelPartitioner` — real ``threading`` workers over a
  bounded queue, scoring lock-free and committing under a lock.  This is
  the wall-clock executor for Fig. 12.  **Caveat** (documented in
  EXPERIMENTS.md): under CPython's GIL on a single core the speedup part
  of Fig. 12 cannot materialize; the executor still faithfully exhibits
  the contention-side effects (rising overhead past the sweet spot) and
  the RCT quality behaviour.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any

import numpy as np

from ..graph.digraph import AdjacencyRecord
from ..graph.stream import VertexStream
from ..partitioning.base import (
    PartitionState,
    StreamingPartitioner,
    StreamingResult,
)
from .rct import ReversedCountingTable

__all__ = ["SimulatedParallelPartitioner", "ThreadedParallelPartitioner"]


class _ParallelBase:
    """Shared plumbing for both executors."""

    def __init__(self, base: StreamingPartitioner, *, parallelism: int = 4,
                 epsilon: int = 2, use_rct: bool = True,
                 max_delays: int = 3) -> None:
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        self.base = base
        self.parallelism = parallelism
        self.epsilon = epsilon
        self.use_rct = use_rct
        self.max_delays = max_delays

    @property
    def num_partitions(self) -> int:
        return self.base.num_partitions

    def _stats(self, rct: ReversedCountingTable | None,
               delayed_total: int, state: PartitionState
               ) -> dict[str, Any]:
        stats = self.base.result_stats(state)
        stats.update(
            parallelism=self.parallelism,
            use_rct=self.use_rct,
            delayed=delayed_total,
            # NB: the table defines __len__, so an empty (fully drained)
            # table is falsy — test identity, not truthiness.
            conflicts=rct.total_conflicts if rct is not None else 0,
        )
        return stats


class SimulatedParallelPartitioner(_ParallelBase):
    """Deterministic batch model of M-way concurrent placement.

    Per batch: take the next M records, score them all against the
    batch-start state (the stale local view concurrent workers observe),
    then commit sequentially.  With the RCT enabled, records whose
    dependency counter exceeds the live threshold are deferred to the next
    batch, where they are re-scored against *fresh* state — exactly the
    benefit the paper's delay mechanism buys.
    """

    @property
    def name(self) -> str:
        return f"{self.base.name}-par{self.parallelism}(sim)"

    def partition(self, stream: VertexStream, *,
                  instrumentation=None) -> StreamingResult:
        base = self.base
        state = base.make_state(stream)
        base._setup(stream, state)
        rct = ReversedCountingTable(self.parallelism,
                                    epsilon=self.epsilon) \
            if self.use_rct else None
        delayed_total = 0
        probe = instrumentation.stream_probe(base, state) \
            if instrumentation is not None else None
        batch_index = 0

        start = time.perf_counter()
        carried: list[tuple[AdjacencyRecord, int]] = []  # (record, delays)
        iterator = iter(stream)
        exhausted = False
        while not exhausted or carried:
            # Assemble the next concurrent batch: carried-over delayed
            # records first, then fresh records from the buffer.
            batch: list[tuple[AdjacencyRecord, int]] = carried
            carried = []
            while len(batch) < self.parallelism and not exhausted:
                try:
                    batch.append((next(iterator), 0))
                except StopIteration:
                    exhausted = True
            if not batch:
                break

            if rct is not None:
                for record, _ in batch:
                    rct.register(record.vertex)
                for record, delays in batch:
                    # Only *fresh* records note their references: a
                    # carried record's notes from its first batch are
                    # still outstanding (they drain on commit), so
                    # re-noting every batch would inflate neighbor
                    # counters without bound and keep the delay
                    # threshold artificially hot — an adversarial hub
                    # could then hold the whole table above threshold
                    # until every record burned its full delay budget.
                    if delays == 0:
                        rct.note_references(record.neighbors)

            # Phase 1 — concurrent scoring against batch-start state.
            scored: list[tuple[AdjacencyRecord, int, np.ndarray]] = []
            for record, delays in batch:
                scores = base._score(record, state)
                scored.append((record, delays, scores))

            # Phase 2 — commit, deferring heavy-dependency records.
            batch_delayed = 0
            for record, delays, scores in scored:
                if (rct is not None and delays < self.max_delays
                        and rct.should_delay(record.vertex)):
                    carried.append((record, delays + 1))
                    delayed_total += 1
                    batch_delayed += 1
                    continue
                if probe is None:
                    pid = base.choose(scores, state)
                else:
                    pid, margin = base.choose_with_margin(scores, state)
                state.commit(record, pid)
                base._after_commit(record, pid, state)
                if probe is not None:
                    # The batch-stale scores mean the cached neighbor tally
                    # (if any) predates other commits in this batch; the
                    # probe recomputes when the memo has been consumed.
                    probe.observe(record, pid, margin)
                if rct is not None:
                    rct.remove(record.vertex)
                    rct.release_references(record.neighbors)
            if instrumentation is not None:
                batch_index += 1
                instrumentation.emit({
                    "type": "parallel_batch",
                    "batch": batch_index,
                    "batch_size": len(scored),
                    "delayed": batch_delayed,
                    "placements": int(state.placed_vertices),
                })

        elapsed = time.perf_counter() - start
        if probe is not None:
            probe.finish(elapsed)
            instrumentation.count("parallel.delayed", delayed_total)
            if rct is not None:
                instrumentation.gauge("parallel.conflicts",
                                      rct.total_conflicts)
        return StreamingResult(
            assignment=state.to_assignment(),
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=base.num_partitions,
            stats=self._stats(rct, delayed_total, state),
        )


class ThreadedParallelPartitioner(_ParallelBase):
    """Real shared-memory threads over a producer–consumer queue.

    The producer streams records into a bounded queue (the paper's
    buffer); M workers score lock-free (NumPy reads of the shared route
    table may be stale — the very effect the RCT mitigates) and commit
    under one lock.  Delayed records are re-queued with a retry budget.

    Workers are **supervised**: a worker that dies scoring a record hands
    the in-flight record back to the queue (no placement is lost) and is
    replaced by a fresh thread, up to ``max_worker_restarts`` per run
    with exponential backoff between restarts.  Each restart is counted
    in the result stats and emitted as a ``worker_restart`` trace record.
    Once the budget is exhausted — or a worker dies *inside* the commit
    section, where shared state may be half-updated and a retry could
    double-place — the run aborts and the original error surfaces.
    Requeued records carry a ``noted`` flag so their RCT references are
    counted exactly once across retries: a record handed back by a dying
    worker is re-scored but never re-noted, keeping the dependency
    counters and the ``delayed``/``conflicts`` stats identical to a run
    where the worker survived.
    """

    def __init__(self, base: StreamingPartitioner, *, parallelism: int = 4,
                 epsilon: int = 2, use_rct: bool = True,
                 max_delays: int = 3, queue_capacity: int | None = None,
                 max_worker_restarts: int = 2,
                 restart_backoff: float = 0.01) -> None:
        super().__init__(base, parallelism=parallelism, epsilon=epsilon,
                         use_rct=use_rct, max_delays=max_delays)
        if max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if restart_backoff < 0:
            raise ValueError("restart_backoff must be >= 0")
        self.queue_capacity = queue_capacity or 4 * parallelism
        self.max_worker_restarts = max_worker_restarts
        self.restart_backoff = restart_backoff

    @property
    def name(self) -> str:
        return f"{self.base.name}-par{self.parallelism}"

    def partition(self, stream: VertexStream, *,
                  instrumentation=None) -> StreamingResult:
        base = self.base
        state = base.make_state(stream)
        base._setup(stream, state)
        rct = ReversedCountingTable(self.parallelism,
                                    epsilon=self.epsilon) \
            if self.use_rct else None
        # The probe's counters are only touched under the commit lock, so
        # the instrumented threaded run needs no extra synchronisation.
        probe = instrumentation.stream_probe(base, state) \
            if instrumentation is not None else None
        commit_lock = threading.Lock()
        count_lock = threading.Lock()
        # Delayed records are re-queued, so completion cannot be signalled
        # with poison pills (a re-queued record could land behind them).
        # Workers instead drain until the producer is done AND no record
        # is pending (produced but not yet committed).
        buffer: queue.Queue = queue.Queue(maxsize=self.queue_capacity)
        producer_done = threading.Event()
        abort = threading.Event()
        pending = [0]
        delayed_counter = [0]
        # Unrecoverable failures (producer death, commit-section death,
        # restart budget exhaustion): first one wins and is re-raised.
        fatal: list[BaseException] = []
        # Restartable worker deaths, consumed by the supervisor loop.
        failure_q: queue.Queue = queue.Queue()

        def producer() -> None:
            try:
                for record in stream:
                    if rct is not None:
                        rct.register(record.vertex)
                    with count_lock:
                        pending[0] += 1
                    # Bounded-timeout put: an unbounded block would
                    # deadlock the run if every worker has already died
                    # on an error while the buffer is full (nobody will
                    # ever drain it).  On each timeout check for an
                    # abort and stop the stream — the record is
                    # un-counted so the drain invariant stays exact.
                    while True:
                        try:
                            buffer.put((record, 0, False), timeout=0.05)
                            break
                        except queue.Full:
                            if fatal or abort.is_set():
                                with count_lock:
                                    pending[0] -= 1
                                return
            except BaseException as exc:
                fatal.append(exc)
                abort.set()
            finally:
                producer_done.set()

        def worker(index: int) -> None:
            while True:
                try:
                    record, delays, noted = buffer.get(timeout=0.02)
                except queue.Empty:
                    if abort.is_set():
                        return
                    if producer_done.is_set():
                        with count_lock:
                            drained = pending[0] == 0
                        if drained or fatal:
                            return
                    continue
                try:
                    if rct is not None and not noted:
                        rct.note_references(record.neighbors)
                        # Flip *after* the notes land: a retry after a
                        # crash mid-noting re-notes (rare, best-effort)
                        # rather than silently under-counting.
                        noted = True
                    scores = base._score(record, state)
                    delay = (rct is not None and delays < self.max_delays
                             and rct.should_delay(record.vertex))
                except BaseException as exc:
                    # Scoring touched nothing the commit path depends on;
                    # hand the record back (so no placement is lost) and
                    # report for a supervised restart.  The ``noted``
                    # flag rides along so the retry counts this record's
                    # RCT references exactly once.  The put blocks with
                    # an abort check: dropping the record would leave
                    # ``pending`` permanently non-zero.
                    while not abort.is_set():
                        try:
                            buffer.put((record, delays, noted),
                                       timeout=0.05)
                            break
                        except queue.Full:
                            continue
                    failure_q.put((index, exc))
                    return
                if delay:
                    try:
                        # Never block here: if every worker tried to
                        # re-queue into a full buffer at once they
                        # would deadlock; placing immediately is the
                        # safe degradation.
                        buffer.put_nowait((record, delays + 1, True))
                        # Guarded: `list[0] += 1` is a read-modify-
                        # write that loses increments when workers
                        # race on it.
                        with count_lock:
                            delayed_counter[0] += 1
                        continue
                    except queue.Full:
                        pass
                try:
                    with commit_lock:
                        if probe is None:
                            pid = base.choose(scores, state)
                        else:
                            pid, margin = base.choose_with_margin(
                                scores, state)
                        state.commit(record, pid)
                        base._after_commit(record, pid, state)
                        if probe is not None:
                            probe.observe(record, pid, margin)
                except BaseException as exc:
                    # Shared state may be half-updated; a retry could
                    # place the vertex twice.  Not survivable.
                    fatal.append(exc)
                    abort.set()
                    return
                if rct is not None:
                    rct.remove(record.vertex)
                    rct.release_references(record.neighbors)
                with count_lock:
                    pending[0] -= 1

        start = time.perf_counter()
        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"spnl-worker-{i}")
                   for i in range(self.parallelism)]
        feeder = threading.Thread(target=producer, name="spnl-producer")
        for t in threads:
            t.start()
        feeder.start()

        # Supervisor: replace dead workers until the restart budget runs
        # out, then convert the next death into a fatal abort.  A dying
        # worker enqueues its failure *before* exiting, so once every
        # thread is dead one final non-blocking drain sees all reports.
        restarts_used = 0
        while True:
            try:
                index, exc = failure_q.get(timeout=0.05)
            except queue.Empty:
                if any(t.is_alive() for t in threads):
                    continue
                try:
                    index, exc = failure_q.get_nowait()
                except queue.Empty:
                    break
            if restarts_used >= self.max_worker_restarts:
                fatal.append(exc)
                abort.set()
                continue
            restarts_used += 1
            backoff = self.restart_backoff * 2 ** (restarts_used - 1)
            if backoff:
                time.sleep(backoff)
            replacement = threading.Thread(
                target=worker, args=(index,),
                name=f"spnl-worker-{index}r{restarts_used}")
            threads[index] = replacement
            replacement.start()
            if instrumentation is not None:
                # commit_lock serializes against probe emissions so the
                # trace's seq numbering stays consistent.
                with commit_lock:
                    instrumentation.count("parallel.worker_restarts")
                    instrumentation.emit({
                        "type": "worker_restart",
                        "worker": index,
                        "restarts": restarts_used,
                        "error": repr(exc),
                        "backoff_seconds": backoff,
                    })

        feeder.join()
        elapsed = time.perf_counter() - start
        if fatal:
            raise fatal[0]
        if probe is not None:
            probe.finish(elapsed)
            instrumentation.count("parallel.delayed", delayed_counter[0])
            if rct is not None:
                instrumentation.gauge("parallel.conflicts",
                                      rct.total_conflicts)

        stats = self._stats(rct, delayed_counter[0], state)
        stats["worker_restarts"] = restarts_used
        return StreamingResult(
            assignment=state.to_assignment(),
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=base.num_partitions,
            stats=stats,
        )
