"""Shared-memory plumbing for the process-sharded executor.

Two pieces live here:

* :class:`SharedArrayBlock` — one ``multiprocessing.shared_memory``
  segment carved into named numpy views from a declarative layout spec.
  The parent creates the block; workers attach by name and rebuild the
  identical views, so a single segment carries the route table, the
  per-partition tallies, the heuristic's Γ lanes, the record ring, and
  the RCT counters — one ``shm_open`` per worker instead of a dozen.
* :class:`SharedConflictTable` — the paper's Reversed Counting Table
  (Sec. V-B) over shared arrays.  The *parent* owns the canonical
  counters and the in-flight membership bitmap (it is the only process
  that registers/removes/releases, always between scoring barriers, so
  no cross-process locking is needed); workers record the conflicts they
  observe during neighbor traversal into private per-worker lanes, which
  the parent folds into the canonical counters at each group barrier.
  Folding is a commutative integer sum, so the result is deterministic
  regardless of worker scheduling — the foundation of the executor's
  byte-parity with :class:`~repro.parallel.executor
  .SimulatedParallelPartitioner`.

Semantics mirror :class:`~repro.parallel.rct.ReversedCountingTable`
operation-for-operation (capacity ``ε·M``, mean-of-nonzero threshold,
release floored at zero, membership keyed on registration order); the
parity test suite pins the two tables against each other.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np

__all__ = ["SharedArrayBlock", "SharedConflictTable", "attach_shared_memory"]


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    Workers only *view* the parent's segment; registering the attachment
    with their own ``resource_tracker`` would make the tracker unlink
    the segment when a worker exits (the well-known CPython 3.8–3.12
    over-tracking wart, fixed by ``track=False`` in 3.13).  The parent
    created the block, the parent unlinks it.
    """
    try:  # Python >= 3.13
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Pre-3.13: attaching registers with the resource tracker too.
        # Suppress the registration instead of unregistering after the
        # fact — under fork the tracker process is shared, and a second
        # worker's unregister of the same name raises KeyError noise in
        # the tracker.
        from multiprocessing import resource_tracker
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedArrayBlock:
    """One shared-memory segment holding several named numpy arrays.

    ``spec`` is an ordered list of ``(name, shape, dtype)`` triples; the
    arrays are packed back-to-back with 64-byte alignment (so no view
    straddles a cache line shared with its neighbor — workers bump their
    conflict lanes while the parent reads other views).  Both sides must
    build from the *same* spec; the creating side embeds nothing in the
    segment, the spec travels to workers as a plain picklable list.
    """

    _ALIGN = 64

    def __init__(self, spec, shm: shared_memory.SharedMemory,
                 *, owner: bool) -> None:
        self.spec = list(spec)
        self._shm = shm
        self._owner = owner
        self._closed = False
        try:
            needed = self.layout_size(self.spec)
            if needed > shm.size:
                raise ValueError(
                    f"layout needs {needed} bytes but the segment holds "
                    f"{shm.size} (spec mismatch between creator and "
                    "attacher?)")
            self.views: dict[str, np.ndarray] = {}
            offset = 0
            for name, shape, dtype in self.spec:
                dt = np.dtype(dtype)
                size = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
                self.views[name] = np.ndarray(
                    shape, dtype=dt, buffer=shm.buf, offset=offset)
                offset += -(-size // self._ALIGN) * self._ALIGN
        except BaseException:
            # A half-constructed block still holds the segment: release
            # the mapping (and the name, when this side created it) so a
            # spec mismatch or bad dtype cannot leak a /dev/shm entry.
            self.views = {}
            self.close()
            raise

    # ------------------------------------------------------------------
    @classmethod
    def layout_size(cls, spec) -> int:
        """Total bytes the packed layout of ``spec`` occupies."""
        total = 0
        for _name, shape, dtype in spec:
            size = int(np.prod(shape, dtype=np.int64)) \
                * np.dtype(dtype).itemsize
            total += -(-size // cls._ALIGN) * cls._ALIGN
        return max(total, 1)

    @classmethod
    def create(cls, spec) -> "SharedArrayBlock":
        """Allocate a fresh zero-filled segment for ``spec``."""
        shm = shared_memory.SharedMemory(
            create=True, size=cls.layout_size(spec))
        try:
            return cls(spec, shm, owner=True)
        except BaseException:
            # ``__init__`` unlinks on its own failure paths, but guard
            # against anything raised before it took ownership.
            try:
                shm.close()
            except BufferError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            raise

    @classmethod
    def attach(cls, name: str, spec) -> "SharedArrayBlock":
        """Attach to the segment ``name`` created from the same ``spec``."""
        return cls(spec, attach_shared_memory(name), owner=False)

    @property
    def name(self) -> str:
        """Segment name workers attach by."""
        return self._shm.name

    def close(self) -> None:
        """Drop this process's mapping (and the segment name, if owner).

        Idempotent: every teardown path — normal shutdown, SIGTERM
        drain, chaos crash-style teardown, ``__del__`` as a last resort —
        may call it without coordination.  Unlinking is attempted even
        when a live external view blocks the ``close()`` (BufferError):
        POSIX keeps the segment alive until every mapping drops, so
        unlink-first can never corrupt a reader, while skipping it would
        leak the name in ``/dev/shm``.
        """
        if self._closed:
            return
        self._closed = True
        self.views.clear()
        try:
            self._shm.close()
        except BufferError:
            pass  # a live external view keeps the mapping; harmless
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-timing dependent
        # Backstop only: deterministic teardown paths call close()
        # explicitly; this catches owner blocks dropped by an exception
        # before any try/finally could run.
        try:
            self.close()
        except Exception:
            pass


class SharedConflictTable:
    """The RCT over shared arrays: parent-owned counters, worker lanes.

    Parameters
    ----------
    counts:
        ``(V,) int32`` canonical dependency counters (shared, but only
        the parent writes).
    in_flight:
        ``(V,) uint8`` membership bitmap — nonzero while the vertex is
        registered.  Workers read it during neighbor traversal to decide
        which references to note (the dict-membership test of
        :class:`~repro.parallel.rct.ReversedCountingTable`).
    lanes:
        ``(num_workers, V) int32`` per-worker conflict lanes.  Worker
        ``w`` only ever writes ``lanes[w]``; the parent folds and zeroes
        lanes at each group barrier, so there are no write-write races
        by construction.
    capacity:
        The paper's ``ε·M`` bound on registered vertices.
    """

    def __init__(self, counts: np.ndarray, in_flight: np.ndarray,
                 lanes: np.ndarray, *, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.counts = counts
        self.in_flight = in_flight
        self.lanes = lanes
        self.capacity = capacity
        # Registration order, mirrored from the dict-based table so the
        # mean-of-nonzero threshold sums in the identical order.
        self._members: dict[int, None] = {}
        self.total_conflicts = 0
        self.total_delays = 0

    def __len__(self) -> int:
        return len(self._members)

    # -- parent-side operations (between barriers only) ----------------
    def register(self, vertex: int) -> bool:
        """Enter ``vertex`` as in-flight; False if the table is full."""
        if vertex in self._members:
            return True
        if len(self._members) >= self.capacity:
            return False
        self._members[vertex] = None
        self.in_flight[vertex] = 1
        self.counts[vertex] = 0
        return True

    def fold_lanes(self) -> int:
        """Fold every worker lane into the canonical counters.

        Called once per group barrier, after all workers went idle.
        Returns (and accumulates) how many conflicts the group noted.
        The fold only visits registered vertices: workers filter their
        notes through ``in_flight``, and membership does not change
        while they score, so nothing can land outside that set.
        """
        if not self._members:
            return 0
        members = np.fromiter(self._members, dtype=np.int64,
                              count=len(self._members))
        noted = self.lanes[:, members].sum(axis=0, dtype=np.int64)
        hits = int(noted.sum())
        if hits:
            self.counts[members] += noted.astype(np.int32)
            self.lanes[:, members] = 0
        self.total_conflicts += hits
        return hits

    def clear_lane(self, worker: int) -> None:
        """Discard worker ``worker``'s partial notes (pre-restart).

        A respawned worker redoes its sub-range from scratch, re-noting
        every reference; zeroing first keeps the fold exactly-once.
        """
        if self._members:
            members = np.fromiter(self._members, dtype=np.int64,
                                  count=len(self._members))
            self.lanes[worker, members] = 0

    def release_references(self, neighbors: np.ndarray) -> None:
        """Drain counters once the referencing vertex has committed."""
        counts = self.counts
        in_flight = self.in_flight
        for u in neighbors:
            u = int(u)
            if in_flight[u] and counts[u] > 0:
                counts[u] -= 1

    def dependency_of(self, vertex: int) -> int:
        """Current dependency counter of ``vertex`` (0 if absent)."""
        if not self.in_flight[vertex]:
            return 0
        return int(self.counts[vertex])

    def _nonzero(self) -> list[int]:
        counts = self.counts
        return [int(counts[u]) for u in self._members if counts[u] > 0]

    def threshold(self) -> float:
        """The paper's delay threshold: mean of non-zero counters."""
        nonzero = self._nonzero()
        if not nonzero:
            return float("inf")
        return float(np.mean(nonzero))

    def should_delay(self, vertex: int) -> bool:
        """True when ``vertex``'s dependency exceeds the live threshold."""
        count = self.dependency_of(vertex)
        nonzero = self._nonzero()
        if count == 0 or not nonzero:
            return False
        delay = count > float(np.mean(nonzero))
        if delay:
            self.total_delays += 1
        return delay

    def remove(self, vertex: int) -> None:
        """Drop ``vertex`` from the table (it has been placed)."""
        if self._members.pop(vertex, False) is None:
            self.in_flight[vertex] = 0
            self.counts[vertex] = 0
