"""Synthetic graph generators used as stand-ins for the paper's datasets.

The evaluation graphs in the paper (stanford, uk2005, eu2015, indo2004,
uk2002, web2001, sk2005, uk2007) are real web crawls of 58 MB – 34 GB; we
cannot ship or process them here, so :mod:`repro.bench.datasets` builds
scaled stand-ins from the generators below.  What the partitioning heuristics
actually respond to — and what these generators therefore control — is:

* **degree skew** (scale-free out-/in-degree): drives δ_e skew and FENNEL/LDG
  behaviour (``power_law_degrees``, ``rmat``);
* **community structure**: drives how much ECR any partitioner can save
  (``community_web_graph`` plants communities explicitly);
* **topology locality in id order**: web crawls are BFS-ordered on disk,
  which is the premise of SPNL's Range pre-assignment.
  ``community_web_graph`` assigns consecutive ids within communities, and
  :mod:`repro.graph.relabel` can impose/destroy BFS order on any graph.

All generators are deterministic given ``seed`` and return
:class:`~repro.graph.digraph.DiGraph`.
"""

from __future__ import annotations

import numpy as np

from .builder import from_edges
from .digraph import DiGraph

__all__ = [
    "power_law_degrees",
    "erdos_renyi",
    "barabasi_albert",
    "rmat",
    "community_web_graph",
    "ring_of_cliques",
    "grid_graph",
]


def power_law_degrees(n: int, *, exponent: float = 2.2, min_degree: int = 1,
                      max_degree: int | None = None,
                      rng: np.random.Generator | None = None) -> np.ndarray:
    """Sample ``n`` integer degrees from a bounded discrete power law.

    Uses inverse-CDF sampling of ``P(d) ∝ d^-exponent`` on
    ``[min_degree, max_degree]``.  Web graphs in the paper have
    exponent ≈ 2.1–2.5.
    """
    if rng is None:
        rng = np.random.default_rng()
    if max_degree is None:
        max_degree = max(min_degree + 1, int(np.sqrt(n)) * 4)
    u = rng.random(n)
    a = 1.0 - exponent
    lo, hi = float(min_degree), float(max_degree) + 1.0
    if abs(a) < 1e-9:  # exponent == 1: log-uniform
        samples = lo * (hi / lo) ** u
    else:
        samples = (lo ** a + u * (hi ** a - lo ** a)) ** (1.0 / a)
    return np.clip(samples.astype(np.int64), min_degree, max_degree)


def erdos_renyi(n: int, avg_degree: float = 8.0, *,
                seed: int = 0, name: str = "erdos_renyi") -> DiGraph:
    """Directed G(n, m) random graph with ``m ≈ n·avg_degree`` edges.

    No community structure or locality — the pessimal case for every
    partitioner, useful as a control in ablations.
    """
    rng = np.random.default_rng(seed)
    m = int(n * avg_degree)
    src = rng.integers(0, n, size=m, dtype=np.int64)
    dst = rng.integers(0, n, size=m, dtype=np.int64)
    keep = src != dst
    return from_edges(zip(src[keep].tolist(), dst[keep].tolist()),
                      num_vertices=n, name=name)


def barabasi_albert(n: int, m: int = 4, *, seed: int = 0,
                    name: str = "barabasi_albert") -> DiGraph:
    """Directed preferential-attachment graph (new vertex → m targets).

    Produces a scale-free in-degree distribution and mild id locality
    (late vertices point at early hubs), resembling crawl frontiers.
    """
    if m < 1 or n <= m:
        raise ValueError("need n > m >= 1")
    rng = np.random.default_rng(seed)
    sources = np.empty((n - m) * m, dtype=np.int64)
    targets = np.empty((n - m) * m, dtype=np.int64)
    # Repeated-nodes list implements preferential attachment in O(n·m).
    repeated: list[int] = list(range(m))
    pos = 0
    for v in range(m, n):
        chosen: set[int] = set()
        while len(chosen) < m:
            pick = repeated[rng.integers(0, len(repeated))]
            chosen.add(int(pick))
        for u in chosen:
            sources[pos] = v
            targets[pos] = u
            pos += 1
            repeated.append(u)
        repeated.extend([v] * m)
    return from_edges(zip(sources.tolist(), targets.tolist()),
                      num_vertices=n, name=name)


def rmat(scale: int, edge_factor: int = 16, *,
         a: float = 0.57, b: float = 0.19, c: float = 0.19,
         seed: int = 0, name: str = "rmat") -> DiGraph:
    """Recursive-MATrix (Graph500-style) generator: ``2^scale`` vertices.

    Highly skewed degrees, weak community structure — a reasonable model
    for the paper's most degree-skewed datasets (eu2015, indo2004 have
    δ_e up to ~19 at K=32).
    """
    d = 1.0 - a - b - c
    if d < -1e-9:
        raise ValueError("a + b + c must be <= 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = n * edge_factor
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        go_right_src = (r >= a + b) & (r < a + b + c) | (r >= a + b + c)
        go_right_dst = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        bit = np.int64(1 << (scale - level - 1))
        src += go_right_src * bit
        dst += go_right_dst * bit
    keep = src != dst
    return from_edges(zip(src[keep].tolist(), dst[keep].tolist()),
                      num_vertices=n, name=name)


def community_web_graph(n: int, *, avg_degree: float = 12.0,
                        avg_community_size: float = 120.0,
                        intra_fraction: float = 0.72,
                        near_fraction: float = 0.18,
                        reciprocity: float = 0.35,
                        degree_exponent: float = 2.2,
                        degree_max_factor: float = 12.0,
                        community_size_exponent: float = 1.8,
                        community_max_factor: float = 6.0,
                        near_offset_divisor: int = 256,
                        superhub_count: int = 0,
                        superhub_degree: int = 0,
                        density_skew: float = 1.0,
                        seed: int = 0,
                        name: str = "community_web") -> DiGraph:
    """The workhorse stand-in for the paper's BFS-ordered web crawls.

    A BFS-crawled web graph has three kinds of links, which the generator
    reproduces explicitly:

    1. **site-internal links** (fraction ``intra_fraction``): communities
       ("web sites") of power-law size, laid out with **consecutive ids**
       exactly as a crawl visits a site page by page; targets are uniform
       within the source's community;
    2. **near links** (``near_fraction``): cross-site links to pages
       crawled at a similar time — target id offset drawn from a power law
       around the source id, giving the heavy-tailed id-distance profile
       that makes the paper's Range policy and sliding window work;
    3. **hub links** (the remainder): global links Zipf-tilted toward low
       ids (portals crawled first), producing scale-free in-degrees and
       the δ_e skew visible in the paper's Tables III/V.

    A ``reciprocity`` fraction of site-internal links additionally get a
    reverse edge (navigation menus link both ways), which is what gives
    out-neighbor-only heuristics like LDG *some* signal on real crawls.

    ``superhub_count``/``superhub_degree`` plant a few directory-style
    pages with enormous *global* out-degrees; their edges are largely
    uncuttable, so use sparingly.

    ``density_skew`` > 1 draws a per-community density multiplier from a
    power law in ``[1, density_skew]`` and scales member out-degrees by
    it.  Dense communities stay internally local (no ECR penalty) but
    concentrate edge mass wherever a *vertex*-balanced partitioner puts
    them — this is the actual mechanism behind the paper's δ_e ≈ 8–19
    rows (eu2015/indo2004 in Table III) coexisting with tiny ECR.

    ``avg_community_size`` sets the locality grain.  Keeping it well below
    ``|V|/K`` lets a good partitioner reach a low ECR floor of roughly
    ``1 - intra_fraction - near_fraction`` plus boundary losses, matching
    the paper's web-graph regime (SPNL ≈ 0.03–0.18 at K=32).
    """
    if not 0.0 <= intra_fraction + near_fraction <= 1.0:
        raise ValueError("intra_fraction + near_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    num_communities = max(1, int(round(n / avg_community_size)))

    # --- 1. community sizes and consecutive id layout ------------------
    raw = power_law_degrees(
        num_communities, exponent=community_size_exponent, min_degree=4,
        max_degree=max(8, int(avg_community_size * community_max_factor)),
        rng=rng)
    sizes = np.maximum(1, (raw * (n / raw.sum())).astype(np.int64))
    while int(sizes.sum()) != n:  # absorb rounding a few units at a time
        diff = n - int(sizes.sum())
        step = np.sign(diff)
        bump = min(abs(diff), num_communities)
        order = np.argsort(-sizes) if step > 0 else np.argsort(sizes)
        adjustable = order[:bump]
        if step < 0:
            adjustable = adjustable[sizes[adjustable] > 1]
            if len(adjustable) == 0:
                raise ValueError("community sizing failed; increase n")
        sizes[adjustable] += step
    starts = np.zeros(num_communities + 1, dtype=np.int64)
    np.cumsum(sizes, out=starts[1:])
    community_of = np.repeat(np.arange(num_communities, dtype=np.int64),
                             sizes)

    # --- 2. out-degrees -------------------------------------------------
    degrees = power_law_degrees(
        n, exponent=degree_exponent, min_degree=1,
        max_degree=max(4, int(avg_degree * degree_max_factor)), rng=rng)
    degrees = np.maximum(
        1, (degrees * (avg_degree / degrees.mean())).astype(np.int64))
    if density_skew > 1.0:
        density = power_law_degrees(
            num_communities, exponent=1.5, min_degree=1,
            max_degree=max(2, int(density_skew)), rng=rng)
        degrees = degrees * density[community_of]
    is_superhub = np.zeros(n, dtype=bool)
    if superhub_count > 0 and superhub_degree > 0:
        hubs = rng.choice(n, size=min(superhub_count, n), replace=False)
        degrees[hubs] = superhub_degree
        is_superhub[hubs] = True
    total = int(degrees.sum())

    # --- 3. targets -------------------------------------------------------
    src = np.repeat(np.arange(n, dtype=np.int64), degrees)
    roll = rng.random(total)
    intra_mask = roll < intra_fraction
    near_mask = (~intra_mask) & (roll < intra_fraction + near_fraction)

    # (1) site-internal: uniform within the source's community.
    src_comm = community_of[src]
    comm_start = starts[src_comm]
    comm_size = sizes[src_comm]
    intra_targets = comm_start + (rng.random(total) * comm_size).astype(
        np.int64)

    # (2) near: power-law id offset, random direction, reflected at the
    # id-space boundary so the distribution stays unbiased near the edges.
    max_offset = max(2, n // near_offset_divisor)
    offsets = power_law_degrees(total, exponent=1.8, min_degree=1,
                                max_degree=max_offset, rng=rng)
    signs = rng.integers(0, 2, size=total) * 2 - 1
    near_targets = src + signs * offsets
    near_targets = np.where(near_targets < 0, -near_targets, near_targets)
    near_targets = np.where(near_targets >= n,
                            2 * (n - 1) - near_targets, near_targets)
    near_targets = np.clip(near_targets, 0, n - 1)

    # (3) hubs: Zipf-tilted toward low ids.
    u = rng.random(total)
    hub_targets = (n ** u - 1).astype(np.int64) % n

    dst = np.where(intra_mask, intra_targets,
                   np.where(near_mask, near_targets, hub_targets))
    # Superhub (directory-page) edges target the whole graph uniformly:
    # restricting them to their tiny community would deduplicate nearly
    # all of them away.
    hub_src = is_superhub[src]
    if hub_src.any():
        dst[hub_src] = rng.integers(0, n, size=int(hub_src.sum()))
    keep = src != dst
    src, dst = src[keep], dst[keep]

    # Reciprocal site-internal links.
    if reciprocity > 0.0:
        recip = intra_mask[keep] & (rng.random(len(src)) < reciprocity)
        src = np.concatenate([src, dst[recip]])
        dst = np.concatenate([dst, src[:len(recip)][recip]])

    return from_edges(zip(src.tolist(), dst.tolist()),
                      num_vertices=n, name=name)


def ring_of_cliques(num_cliques: int, clique_size: int, *,
                    name: str = "ring_of_cliques") -> DiGraph:
    """``num_cliques`` directed cliques chained in a ring.

    A fully deterministic graph with a known optimal partitioning, used by
    unit tests to check that the heuristics find the obvious answer.
    """
    edges: list[tuple[int, int]] = []
    n = num_cliques * clique_size
    for c in range(num_cliques):
        base = c * clique_size
        for i in range(clique_size):
            for j in range(clique_size):
                if i != j:
                    edges.append((base + i, base + j))
        bridge_src = base + clique_size - 1
        bridge_dst = ((c + 1) % num_cliques) * clique_size
        edges.append((bridge_src, bridge_dst))
    return from_edges(edges, num_vertices=n, name=name)


def grid_graph(rows: int, cols: int, *, name: str = "grid") -> DiGraph:
    """Directed 2-D grid (4-neighborhood, both directions).

    Bounded degree and perfect locality; the easy case for every method.
    """
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
                edges.append((v + 1, v))
            if r + 1 < rows:
                edges.append((v, v + cols))
                edges.append((v + cols, v))
    return from_edges(edges, num_vertices=rows * cols, name=name)
