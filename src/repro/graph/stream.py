"""One-pass adjacency-record streams.

Every streaming partitioner in this library consumes a
:class:`VertexStream`: an iterable of
:class:`~repro.graph.digraph.AdjacencyRecord` that may be traversed **once**
per partitioning run.  Streams also expose ``num_vertices`` / ``num_edges``
totals, which the paper's heuristics need up front to size capacities
(``C = δ·|G|/K``), expectation windows, and Range pre-assignments.

Four sources are provided:

* :class:`GraphStream` — records of an in-memory :class:`DiGraph`, in id
  order (the paper's default: "vertices are consecutively numbered and
  serially streamed") or any explicit order;
* :class:`ArrayStream` — the same records backed directly by contiguous
  CSR ``indptr``/``indices`` arrays.  Iterating yields zero-copy
  neighbor views, and the vectorized fast path in
  :mod:`repro.partitioning.base` reads the arrays without constructing
  per-record objects at all (see :func:`as_array_stream`);
* :class:`FileStream` — records read lazily from an adjacency-list file, so
  graphs never have to fit in memory alongside the partitioner state;
* :class:`shuffled` — a convenience wrapper producing a random arrival
  order, used by ablations that destroy streaming locality.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterator, Protocol, Sequence

import numpy as np

from .digraph import AdjacencyRecord, DiGraph
from .io import iter_adjacency_lines

__all__ = ["VertexStream", "GraphStream", "ArrayStream", "FileStream",
           "as_array_stream", "shuffled"]


class _Seekable:
    """``tell()``/``seek()`` in *record* units, shared by every source.

    The position is the index (into the stream's arrival order) of the
    first record the next iteration will yield; ``seek`` sets it and
    ``tell`` reads it back.  Iteration itself does not move the cursor —
    streams stay re-iterable, and the checkpointing driver (which knows
    exactly how many records it consumed) owns progress accounting.
    Resuming a crashed run is therefore: build a fresh stream over the
    same source, ``seek(position)`` from the snapshot, and continue.
    """

    _position = 0

    def tell(self) -> int:
        """Index of the record the next iteration starts from."""
        return self._position

    def seek(self, position: int) -> None:
        """Start subsequent iterations at record ``position``."""
        if position < 0:
            raise ValueError(f"stream position must be >= 0, "
                             f"got {position}")
        limit = getattr(self, "num_vertices", None)
        if limit is not None and position > limit:
            raise ValueError(
                f"stream position {position} is past the end of the "
                f"{limit}-record stream")
        self._position = int(position)


class VertexStream(Protocol):
    """Protocol all stream sources satisfy."""

    @property
    def num_vertices(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def __iter__(self) -> Iterator[AdjacencyRecord]: ...


def _validate_order(order: Sequence[int] | np.ndarray,
                    num_vertices: int) -> np.ndarray:
    """Check ``order`` is a permutation of ``range(num_vertices)``.

    Raises :class:`ValueError` for every malformed case — wrong length,
    out-of-range ids, *negative* ids (which fancy indexing would silently
    wrap around, letting a non-permutation stream the wrong vertices),
    and duplicates.
    """
    order = np.asarray(order, dtype=np.int64)
    if order.ndim != 1 or len(order) != num_vertices:
        raise ValueError("order must cover every vertex exactly once")
    if len(order):
        lo, hi = int(order.min()), int(order.max())
        if lo < 0 or hi >= num_vertices:
            raise ValueError(
                f"order contains out-of-range vertex ids (min {lo}, "
                f"max {hi}, valid range [0, {num_vertices}))")
    seen = np.zeros(num_vertices, dtype=bool)
    seen[order] = True
    if not seen.all():
        raise ValueError("order must be a permutation of vertex ids")
    return order


class GraphStream(_Seekable):
    """Stream an in-memory graph's adjacency records.

    Parameters
    ----------
    graph:
        Source graph.
    order:
        Optional explicit arrival order (a permutation of vertex ids).
        Default: ascending id order, which is what the sliding-window and
        Range-locality techniques assume.
    """

    def __init__(self, graph: DiGraph,
                 order: Sequence[int] | np.ndarray | None = None) -> None:
        self._graph = graph
        if order is not None:
            order = _validate_order(order, graph.num_vertices)
        self._order = order

    @property
    def graph(self) -> DiGraph:
        """Underlying graph (metrics are computed against it afterwards)."""
        return self._graph

    @property
    def order(self) -> np.ndarray | None:
        """Explicit arrival order, or ``None`` for ascending id order."""
        return self._order

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def is_id_ordered(self) -> bool:
        """True when records arrive in ascending vertex-id order."""
        return self._order is None

    def __iter__(self) -> Iterator[AdjacencyRecord]:
        pos = self._position
        if self._order is None:
            if pos == 0:
                yield from self._graph.records()
            else:
                for v in range(pos, self._graph.num_vertices):
                    yield AdjacencyRecord(v, self._graph.out_neighbors(v))
        else:
            for v in self._order[pos:]:
                v = int(v)
                yield AdjacencyRecord(v, self._graph.out_neighbors(v))


class ArrayStream(_Seekable):
    """CSR-backed stream: contiguous ``indptr``/``indices`` + arrival order.

    The array-first twin of :class:`GraphStream`.  Iterating yields
    :class:`AdjacencyRecord` objects whose neighbor arrays are zero-copy
    slices of ``indices``, so the stream is a drop-in
    :class:`VertexStream`; but its real purpose is the vectorized hot
    path: :meth:`StreamingPartitioner.partition
    <repro.partitioning.base.StreamingPartitioner.partition>` detects
    (via :func:`as_array_stream`) that the records live in two flat
    arrays and runs a fused scoring loop over them with **no per-record
    object or array allocations**.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *,
                 order: Sequence[int] | np.ndarray | None = None,
                 name: str = "array-stream") -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if len(indptr) == 0 or indptr[0] != 0:
            raise ValueError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise ValueError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        self._indptr = indptr
        self._indices = indices
        self._name = name
        self._max_degree: int | None = None
        if order is not None:
            order = _validate_order(order, len(indptr) - 1)
        self._order = order

    @classmethod
    def from_graph(cls, graph: DiGraph,
                   order: Sequence[int] | np.ndarray | None = None
                   ) -> "ArrayStream":
        """Zero-copy stream over a graph's own CSR arrays."""
        return cls(graph.indptr, graph.indices, order=order,
                   name=graph.name)

    @classmethod
    def from_file(cls, path: str | Path,
                  order: Sequence[int] | np.ndarray | None = None
                  ) -> "ArrayStream":
        """Materialize an adjacency-list file into CSR arrays once.

        Trades the :class:`FileStream` memory guarantee for the fast
        path; use when the graph fits in memory but arrives as a file.
        """
        from .io import read_adjacency
        graph = read_adjacency(path)
        return cls.from_graph(graph, order=order)

    @property
    def name(self) -> str:
        return self._name

    @property
    def indptr(self) -> np.ndarray:
        """CSR row pointers: neighbors of ``v`` are
        ``indices[indptr[v]:indptr[v+1]]``."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Flat out-neighbor array."""
        return self._indices

    @property
    def order(self) -> np.ndarray | None:
        """Explicit arrival order, or ``None`` for ascending id order."""
        return self._order

    @property
    def num_vertices(self) -> int:
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self._indices)

    @property
    def is_id_ordered(self) -> bool:
        return self._order is None

    @property
    def max_degree(self) -> int:
        """Largest out-degree (sizes the fast path's scratch buffers)."""
        if self._max_degree is None:
            if self.num_vertices == 0:
                self._max_degree = 0
            else:
                self._max_degree = int(np.diff(self._indptr).max())
        return self._max_degree

    def __iter__(self) -> Iterator[AdjacencyRecord]:
        indptr, indices = self._indptr, self._indices
        pos = self._position
        if self._order is None:
            for v in range(pos, self.num_vertices):
                yield AdjacencyRecord(v, indices[indptr[v]:indptr[v + 1]])
        else:
            for v in self._order[pos:]:
                v = int(v)
                yield AdjacencyRecord(v, indices[indptr[v]:indptr[v + 1]])


def as_array_stream(stream) -> ArrayStream | None:
    """View ``stream`` as CSR arrays if that costs nothing, else ``None``.

    :class:`ArrayStream` returns itself; :class:`GraphStream` wraps its
    graph's CSR arrays zero-copy.  Sources without materialized arrays
    (:class:`FileStream`, generators) return ``None`` and stay on the
    record-at-a-time path — the conversion is never allowed to silently
    load a disk stream into memory.  Only *exact* types convert:
    subclasses may override ``__iter__`` (truncation, reordering, fault
    injection), and the CSR view would silently bypass that.
    """
    if type(stream) is ArrayStream:
        return stream
    if type(stream) is GraphStream:
        arrays = ArrayStream.from_graph(stream.graph, order=stream.order)
        arrays.seek(stream.tell())  # a resumed stream keeps its position
        return arrays
    return None


class FileStream(_Seekable):
    """Stream adjacency records straight from a disk file.

    The file is scanned once per iteration; totals are taken from the
    constructor (or discovered by a cheap pre-scan when omitted), mirroring
    how the paper's implementation learns ``|V|``/``|E|`` from dataset
    metadata rather than a full load.

    ``retries``/``retry_backoff`` add supervision against *transient*
    ``OSError`` s (NFS hiccups, flaky block devices): a failed pass is
    reopened after a backed-off sleep and fast-forwarded past the
    records already delivered, so consumers never see a duplicate.
    Backoff is the repo-wide
    :class:`~repro.resilience.backoff.BackoffPolicy` — capped
    exponential with full jitter, so a generous retry budget can no
    longer produce an unbounded ``backoff * 2**(n-1)`` sleep and
    concurrent readers of one flaky volume de-correlate instead of
    retrying in lockstep.  Persistent failures still surface after the
    budget.  ``policy`` (an
    :class:`~repro.recovery.lenient.IngestionPolicy`) selects strict or
    lenient handling of malformed lines.
    """

    def __init__(self, path: str | Path, *, num_vertices: int | None = None,
                 num_edges: int | None = None, retries: int = 2,
                 retry_backoff: float = 0.05, max_backoff: float = 2.0,
                 retry_seed: int | None = None, policy=None) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        from ..resilience.backoff import BackoffPolicy
        self._path = Path(path)
        self._ordered: bool | None = None
        self._ordered_sig: tuple[int, int] | None = None
        self._retries = retries
        self._retry_backoff = retry_backoff
        self._backoff = BackoffPolicy(retry_backoff, max_backoff,
                                      seed=retry_seed)
        self._policy = policy
        if num_vertices is None or num_edges is None:
            from ..ingest.chunked import scan_adjacency_stats
            max_id, edge_count, ordered, _rows = scan_adjacency_stats(
                self._path, policy=self._policy)
            self._set_ordered(ordered)
            num_vertices = num_vertices if num_vertices is not None \
                else max_id + 1
            num_edges = num_edges if num_edges is not None else edge_count
        self._num_vertices = num_vertices
        self._num_edges = num_edges

    def _lines(self):
        return iter_adjacency_lines(self._path, policy=self._policy)

    def _file_sig(self) -> tuple[int, int] | None:
        """(size, mtime_ns) of the backing file, or None if unreadable."""
        try:
            st = self._path.stat()
        except OSError:
            return None
        return st.st_size, st.st_mtime_ns

    def _set_ordered(self, ordered: bool) -> None:
        self._ordered = ordered
        self._ordered_sig = self._file_sig()

    def seek(self, position: int) -> None:
        """Seek, invalidating the id-order memo if the file changed.

        ``seek`` is the resume entry point — the one place a long-lived
        stream object outlives whatever wrote the file — so the memoized
        :attr:`is_id_ordered` verdict is re-checked against the file's
        (size, mtime) signature here and dropped when stale.
        """
        super().seek(position)
        if self._ordered is not None and \
                self._file_sig() != self._ordered_sig:
            self._ordered = None

    @property
    def path(self) -> Path:
        return self._path

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def is_id_ordered(self) -> bool:
        """Whether vertex ids in the file are strictly increasing.

        Determined during the constructor's pre-scan; when both totals
        were supplied (no pre-scan happened) a dedicated id-only scan
        runs once and is cached.  The memo is invalidated by
        :meth:`seek` when the file's (size, mtime) signature changed, so
        resumed runs never trust a stale verdict.  Unordered files used
        to be reported as ordered unconditionally, which silently
        corrupted :class:`~repro.partitioning.window.SlidingWindowStore`
        rotation; now the sliding window refuses them at setup.
        """
        if self._ordered is None:
            self._set_ordered(self._scan_id_order())
        return self._ordered

    def _scan_id_order(self) -> bool:
        prev = -1
        for vertex, _ in self._lines():
            if vertex <= prev:
                return False
            prev = vertex
        return True

    def _iterate_from(self, skip: int) -> Iterator[AdjacencyRecord]:
        """One pass over the file, dropping the first ``skip`` records."""
        claim_ordered = self._ordered
        prev = -1
        ordered = True
        index = 0
        for vertex, neighbors in self._lines():
            if vertex <= prev:
                ordered = False
                if claim_ordered:
                    # The pre-scan saw an ordered file but iteration does
                    # not: the file changed underneath us.  Consumers may
                    # have sized windows from the stale claim — fail loud.
                    raise ValueError(
                        f"{self._path} is no longer id-ordered (vertex "
                        f"{vertex} arrived after {prev}); the file changed "
                        "since it was scanned")
            prev = vertex
            if index >= skip:
                yield AdjacencyRecord(vertex, neighbors)
            index += 1
        if self._ordered is None:
            self._set_ordered(ordered)

    def __iter__(self) -> Iterator[AdjacencyRecord]:
        delivered = 0
        attempts = 0
        while True:
            try:
                for record in self._iterate_from(self._position + delivered):
                    yield record
                    delivered += 1
                return
            except OSError:
                # Transient read failures are retried from where the
                # consumer left off: the reopened pass skips every record
                # already delivered, so downstream sees each exactly once.
                attempts += 1
                if attempts > self._retries:
                    raise
                time.sleep(self._backoff.delay(attempts))


def shuffled(graph: DiGraph, seed: int = 0) -> GraphStream:
    """A stream of ``graph`` in uniformly random arrival order.

    Used to ablate the "serially streamed in numbered order" assumption —
    the sliding window and SPNL's Range locality both lose their edge under
    random arrival, which the ablation benchmarks quantify.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_vertices)
    return GraphStream(graph, order=order)
