"""One-pass adjacency-record streams.

Every streaming partitioner in this library consumes a
:class:`VertexStream`: an iterable of
:class:`~repro.graph.digraph.AdjacencyRecord` that may be traversed **once**
per partitioning run.  Streams also expose ``num_vertices`` / ``num_edges``
totals, which the paper's heuristics need up front to size capacities
(``C = δ·|G|/K``), expectation windows, and Range pre-assignments.

Three sources are provided:

* :class:`GraphStream` — records of an in-memory :class:`DiGraph`, in id
  order (the paper's default: "vertices are consecutively numbered and
  serially streamed") or any explicit order;
* :class:`FileStream` — records read lazily from an adjacency-list file, so
  graphs never have to fit in memory alongside the partitioner state;
* :class:`shuffled` — a convenience wrapper producing a random arrival
  order, used by ablations that destroy streaming locality.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Protocol, Sequence

import numpy as np

from .digraph import AdjacencyRecord, DiGraph
from .io import iter_adjacency_lines

__all__ = ["VertexStream", "GraphStream", "FileStream", "shuffled"]


class VertexStream(Protocol):
    """Protocol all stream sources satisfy."""

    @property
    def num_vertices(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def __iter__(self) -> Iterator[AdjacencyRecord]: ...


class GraphStream:
    """Stream an in-memory graph's adjacency records.

    Parameters
    ----------
    graph:
        Source graph.
    order:
        Optional explicit arrival order (a permutation of vertex ids).
        Default: ascending id order, which is what the sliding-window and
        Range-locality techniques assume.
    """

    def __init__(self, graph: DiGraph,
                 order: Sequence[int] | np.ndarray | None = None) -> None:
        self._graph = graph
        if order is not None:
            order = np.asarray(order, dtype=np.int64)
            if len(order) != graph.num_vertices:
                raise ValueError("order must cover every vertex exactly once")
            seen = np.zeros(graph.num_vertices, dtype=bool)
            seen[order] = True
            if not seen.all():
                raise ValueError("order must be a permutation of vertex ids")
        self._order = order

    @property
    def graph(self) -> DiGraph:
        """Underlying graph (metrics are computed against it afterwards)."""
        return self._graph

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    @property
    def is_id_ordered(self) -> bool:
        """True when records arrive in ascending vertex-id order."""
        return self._order is None

    def __iter__(self) -> Iterator[AdjacencyRecord]:
        if self._order is None:
            yield from self._graph.records()
        else:
            for v in self._order:
                v = int(v)
                yield AdjacencyRecord(v, self._graph.out_neighbors(v))


class FileStream:
    """Stream adjacency records straight from a disk file.

    The file is scanned once per iteration; totals are taken from the
    constructor (or discovered by a cheap pre-scan when omitted), mirroring
    how the paper's implementation learns ``|V|``/``|E|`` from dataset
    metadata rather than a full load.
    """

    def __init__(self, path: str | Path, *, num_vertices: int | None = None,
                 num_edges: int | None = None) -> None:
        self._path = Path(path)
        if num_vertices is None or num_edges is None:
            max_id = -1
            edge_count = 0
            for vertex, neighbors in iter_adjacency_lines(self._path):
                max_id = max(max_id, vertex,
                             int(neighbors.max()) if len(neighbors) else -1)
                edge_count += len(neighbors)
            num_vertices = num_vertices if num_vertices is not None \
                else max_id + 1
            num_edges = num_edges if num_edges is not None else edge_count
        self._num_vertices = num_vertices
        self._num_edges = num_edges

    @property
    def path(self) -> Path:
        return self._path

    @property
    def num_vertices(self) -> int:
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def is_id_ordered(self) -> bool:
        """Adjacency files written by this library are id-ordered."""
        return True

    def __iter__(self) -> Iterator[AdjacencyRecord]:
        for vertex, neighbors in iter_adjacency_lines(self._path):
            yield AdjacencyRecord(vertex, neighbors)


def shuffled(graph: DiGraph, seed: int = 0) -> GraphStream:
    """A stream of ``graph`` in uniformly random arrival order.

    Used to ablate the "serially streamed in numbered order" assumption —
    the sliding window and SPNL's Range locality both lose their edge under
    random arrival, which the ablation benchmarks quantify.
    """
    rng = np.random.default_rng(seed)
    order = rng.permutation(graph.num_vertices)
    return GraphStream(graph, order=order)
