"""Compact directed-graph substrate used throughout the reproduction.

The paper (Sec. II) assumes a directed graph ``G = (V, E)`` whose vertices are
consecutively numbered ``0 .. |V|-1`` and stored as adjacency lists of
*out*-neighbors — the format streamed by all partitioners.  This module
provides :class:`DiGraph`, an immutable CSR (compressed sparse row)
representation of exactly that structure, plus cheap derived views (reverse
graph, degree arrays, undirected edge iteration) needed by the offline
baselines and evaluation metrics.

The CSR layout keeps memory near the information-theoretic floor for Python:
two NumPy integer arrays, ``indptr`` of length ``|V|+1`` and ``indices`` of
length ``|E|``.  ``out_neighbors(v)`` is a zero-copy slice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["DiGraph", "AdjacencyRecord"]


@dataclass(frozen=True)
class AdjacencyRecord:
    """One streamed graph record: a vertex id plus its out-neighbor list.

    This is the unit of work in every streaming partitioner (the paper's
    "currently arrived vertex v with N_out(v)").
    """

    vertex: int
    neighbors: np.ndarray

    @property
    def out_degree(self) -> int:
        """Number of out-neighbors carried by this record."""
        return int(len(self.neighbors))

    def __iter__(self) -> Iterator:
        # Allow ``v, neighbors = record`` unpacking at call sites.
        yield self.vertex
        yield self.neighbors


class DiGraph:
    """An immutable directed graph over consecutively numbered vertices.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; out-neighbors of
        vertex ``v`` live in ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        Flat out-neighbor array (targets of every directed edge, grouped by
        source).
    name:
        Optional human-readable dataset name (used in benchmark reports).

    Use :class:`repro.graph.builder.GraphBuilder` or the readers in
    :mod:`repro.graph.io` to construct instances; the constructor only
    validates shape invariants.
    """

    __slots__ = ("_indptr", "_indices", "_name", "_reverse", "_in_degrees")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 name: str = "graph") -> None:
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise ValueError("indptr and indices must be one-dimensional")
        if len(indptr) == 0 or indptr[0] != 0:
            raise ValueError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) must equal len(indices) "
                f"({len(indices)})")
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ValueError(
                "edge targets must be valid vertex ids in [0, num_vertices)")
        self._indptr = indptr
        self._indices = indices
        self._name = name
        self._reverse: DiGraph | None = None
        self._in_degrees: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """``|V|`` — number of vertices."""
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        """``|E|`` — number of directed edges."""
        return len(self._indices)

    @property
    def name(self) -> str:
        """Dataset name attached at construction time."""
        return self._name

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array (read-only view)."""
        view = self._indptr.view()
        view.flags.writeable = False
        return view

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array (read-only view)."""
        view = self._indices.view()
        view.flags.writeable = False
        return view

    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        return (f"DiGraph(name={self._name!r}, |V|={self.num_vertices}, "
                f"|E|={self.num_edges})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (np.array_equal(self._indptr, other._indptr)
                and np.array_equal(self._indices, other._indices))

    def __hash__(self) -> int:  # immutable, so hashable by identity content
        return hash((self.num_vertices, self.num_edges,
                     self._indices[:16].tobytes()))

    # ------------------------------------------------------------------
    # Neighborhood access
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors ``N_out(v)`` as a zero-copy array slice."""
        return self._indices[self._indptr[v]:self._indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbors ``N_in(v)``; materializes the reverse graph once.

        Streaming partitioners never call this (the whole point of the
        paper's Γ expectation tables is that in-neighbors are *not*
        available); it exists for the offline baselines and metric checks.
        """
        return self.reverse().out_neighbors(v)

    def out_degree(self, v: int) -> int:
        """``|N_out(v)|``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of all in-degrees (cached bincount over targets)."""
        if self._in_degrees is None:
            self._in_degrees = np.bincount(
                self._indices, minlength=self.num_vertices).astype(np.int64)
        return self._in_degrees

    def in_degree(self, v: int) -> int:
        """``|N_in(v)|``."""
        return int(self.in_degrees()[v])

    def max_out_degree(self) -> int:
        """The paper's ``max d`` appearing in space-complexity bounds."""
        if self.num_vertices == 0:
            return 0
        return int(self.out_degrees().max())

    def has_edge(self, u: int, v: int) -> bool:
        """True iff the directed edge ``(u, v)`` exists."""
        row = self.out_neighbors(u)
        # Rows are sorted by GraphBuilder; fall back to linear scan if not.
        i = np.searchsorted(row, v)
        if i < len(row) and row[i] == v:
            return True
        return bool(np.any(row == v))

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def array_stream(self, order: Sequence[int] | np.ndarray | None = None):
        """A CSR-backed :class:`~repro.graph.stream.ArrayStream` view.

        Zero-copy: the stream shares this graph's ``indptr``/``indices``
        arrays, which lets streaming partitioners take the vectorized
        fast path (no per-record allocations).
        """
        from .stream import ArrayStream
        return ArrayStream.from_graph(self, order=order)

    def records(self) -> Iterator[AdjacencyRecord]:
        """Iterate adjacency records in vertex-id order (the stream order)."""
        for v in range(self.num_vertices):
            yield AdjacencyRecord(v, self.out_neighbors(v))

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all directed edges ``(source, target)``."""
        for v in range(self.num_vertices):
            for u in self.out_neighbors(v):
                yield v, int(u)

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(sources, targets)`` arrays covering every edge."""
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                            self.out_degrees())
        return sources, self._indices.copy()

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """The transpose graph (edges flipped); computed once and cached."""
        if self._reverse is None:
            sources, targets = self.edge_array()
            order = np.argsort(targets, kind="stable")
            rev_indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            np.cumsum(np.bincount(targets, minlength=self.num_vertices),
                      out=rev_indptr[1:])
            self._reverse = DiGraph(rev_indptr, sources[order],
                                    name=f"{self._name}^T")
        return self._reverse

    def to_undirected_csr(self) -> "DiGraph":
        """Symmetrized graph with deduplicated edges.

        The multilevel (METIS-like) and label-propagation (XtraPuLP-like)
        offline baselines both operate on the undirected structure, as their
        real counterparts do.
        """
        src, dst = self.edge_array()
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        keep = all_src != all_dst  # drop self loops in undirected view
        all_src, all_dst = all_src[keep], all_dst[keep]
        if len(all_src) == 0:
            indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
            return DiGraph(indptr, np.empty(0, dtype=np.int64),
                           name=f"{self._name}~")
        # Deduplicate (src, dst) pairs via a sort on the packed key.
        key = all_src * self.num_vertices + all_dst
        order = np.argsort(key, kind="stable")
        key = key[order]
        uniq = np.empty(len(key), dtype=bool)
        uniq[0] = True
        np.not_equal(key[1:], key[:-1], out=uniq[1:])
        all_src = all_src[order][uniq]
        all_dst = all_dst[order][uniq]
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(all_src, minlength=self.num_vertices),
                  out=indptr[1:])
        return DiGraph(indptr, all_dst, name=f"{self._name}~")

    def relabeled(self, permutation: Sequence[int] | np.ndarray,
                  name: str | None = None) -> "DiGraph":
        """Return a copy with vertex ``v`` renamed to ``permutation[v]``.

        ``permutation`` must be a bijection over ``range(num_vertices)``.
        Used by :mod:`repro.graph.relabel` to impose or destroy the
        topology locality that SPNL's Range pre-assignment exploits.
        """
        perm = np.asarray(permutation, dtype=np.int64)
        if len(perm) != self.num_vertices:
            raise ValueError("permutation length must equal num_vertices")
        check = np.zeros(self.num_vertices, dtype=bool)
        check[perm] = True
        if not check.all():
            raise ValueError("permutation must be a bijection")
        src, dst = self.edge_array()
        new_src, new_dst = perm[src], perm[dst]
        order = np.lexsort((new_dst, new_src))
        indptr = np.zeros(self.num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(new_src, minlength=self.num_vertices),
                  out=indptr[1:])
        return DiGraph(indptr, new_dst[order],
                       name=name or f"{self._name}*")

    # ------------------------------------------------------------------
    # Size accounting (used by the memory model)
    # ------------------------------------------------------------------
    def nbytes(self) -> int:
        """Bytes held by the CSR arrays (excludes cached reverse graph)."""
        return int(self._indptr.nbytes + self._indices.nbytes)

    @staticmethod
    def empty(num_vertices: int, name: str = "empty") -> "DiGraph":
        """A graph with ``num_vertices`` vertices and no edges."""
        return DiGraph(np.zeros(num_vertices + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64), name=name)
