"""Incremental construction of :class:`~repro.graph.digraph.DiGraph`.

Separating the mutable build phase from the immutable CSR keeps the hot
partitioning paths free of append/realloc logic and makes graph identity
well-defined for caching and property tests.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from .digraph import DiGraph

__all__ = ["GraphBuilder", "from_edges", "from_adjacency"]


class GraphBuilder:
    """Accumulates directed edges and finalizes a CSR :class:`DiGraph`.

    Parameters
    ----------
    num_vertices:
        Fix the vertex-count up front, or leave ``None`` to infer it from
        the largest id seen (plus one).
    dedupe:
        Drop duplicate ``(u, v)`` pairs at build time (default True — all
        paper datasets are simple graphs).
    allow_self_loops:
        Keep ``(v, v)`` edges (default False; the partitioning metrics in
        the paper assume simple graphs, where a self loop can never be cut).
    """

    def __init__(self, num_vertices: int | None = None, *,
                 dedupe: bool = True, allow_self_loops: bool = False) -> None:
        self._fixed_n = num_vertices
        self._dedupe = dedupe
        self._allow_self_loops = allow_self_loops
        self._sources: list[int] = []
        self._targets: list[int] = []
        # Bulk appends from the chunked readers: (src, dst) array pairs
        # kept as-is until build() concatenates them — no per-edge Python.
        self._array_chunks: list[tuple[np.ndarray, np.ndarray]] = []
        self._max_id = -1

    # ------------------------------------------------------------------
    def add_edge(self, source: int, target: int) -> "GraphBuilder":
        """Record one directed edge; returns self for chaining."""
        if source < 0 or target < 0:
            raise ValueError("vertex ids must be non-negative")
        if source == target and not self._allow_self_loops:
            return self
        self._sources.append(source)
        self._targets.append(target)
        if source > self._max_id:
            self._max_id = source
        if target > self._max_id:
            self._max_id = target
        return self

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> "GraphBuilder":
        """Record many directed edges."""
        for source, target in edges:
            self.add_edge(source, target)
        return self

    def add_adjacency(self, vertex: int,
                      neighbors: Sequence[int]) -> "GraphBuilder":
        """Record one adjacency-list row (the paper's streamed record)."""
        for u in neighbors:
            self.add_edge(vertex, int(u))
        # An isolated vertex still extends the id space.
        if vertex > self._max_id:
            self._max_id = vertex
        return self

    def add_edge_arrays(self, sources: np.ndarray,
                        targets: np.ndarray) -> "GraphBuilder":
        """Record a batch of directed edges from parallel id arrays.

        The vectorized twin of :meth:`add_edge`, used by the chunked
        readers: same negative-id validation and self-loop filtering,
        one NumPy pass instead of a Python loop per edge.
        """
        sources = np.ascontiguousarray(sources, dtype=np.int64)
        targets = np.ascontiguousarray(targets, dtype=np.int64)
        if sources.shape != targets.shape or sources.ndim != 1:
            raise ValueError("sources and targets must be matching "
                             "one-dimensional arrays")
        if len(sources) == 0:
            return self
        if int(sources.min()) < 0 or int(targets.min()) < 0:
            raise ValueError("vertex ids must be non-negative")
        if not self._allow_self_loops:
            keep = sources != targets
            if not keep.all():
                # Dropped self-loops do not extend the id space, exactly
                # like add_edge's early return.
                sources, targets = sources[keep], targets[keep]
                if len(sources) == 0:
                    return self
        self._max_id = max(self._max_id, int(sources.max()),
                           int(targets.max()))
        self._array_chunks.append((sources, targets))
        return self

    def note_vertex(self, vertex: int) -> "GraphBuilder":
        """Extend the id space to cover ``vertex`` (isolated rows)."""
        if vertex < 0:
            raise ValueError("vertex ids must be non-negative")
        if vertex > self._max_id:
            self._max_id = vertex
        return self

    @property
    def num_pending_edges(self) -> int:
        """Edges recorded so far (before dedupe)."""
        return len(self._sources) + sum(
            len(src) for src, _ in self._array_chunks)

    # ------------------------------------------------------------------
    def build(self, name: str = "graph") -> DiGraph:
        """Finalize into an immutable CSR graph.

        Out-neighbor rows come out sorted ascending, which downstream code
        (``DiGraph.has_edge``, window lookups) relies on.
        """
        n = self._fixed_n if self._fixed_n is not None else self._max_id + 1
        n = max(n, 0)
        if self._max_id >= n:
            raise ValueError(
                f"edge references vertex {self._max_id} but num_vertices={n}")
        src = np.asarray(self._sources, dtype=np.int64)
        dst = np.asarray(self._targets, dtype=np.int64)
        if self._array_chunks:
            src = np.concatenate(
                [src] + [s for s, _ in self._array_chunks])
            dst = np.concatenate(
                [dst] + [t for _, t in self._array_chunks])
        if len(src):
            order = np.lexsort((dst, src))
            src, dst = src[order], dst[order]
            if self._dedupe:
                keep = np.empty(len(src), dtype=bool)
                keep[0] = True
                np.logical_or(src[1:] != src[:-1], dst[1:] != dst[:-1],
                              out=keep[1:])
                src, dst = src[keep], dst[keep]
        indptr = np.zeros(n + 1, dtype=np.int64)
        if len(src):
            np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
        return DiGraph(indptr, dst, name=name)


def from_edges(edges: Iterable[tuple[int, int]],
               num_vertices: int | None = None,
               name: str = "graph", **kwargs) -> DiGraph:
    """Build a graph from an iterable of ``(source, target)`` pairs."""
    return GraphBuilder(num_vertices, **kwargs).add_edges(edges).build(name)


def from_adjacency(adjacency: Mapping[int, Sequence[int]],
                   num_vertices: int | None = None,
                   name: str = "graph", **kwargs) -> DiGraph:
    """Build a graph from a ``{vertex: [out-neighbors]}`` mapping."""
    builder = GraphBuilder(num_vertices, **kwargs)
    for vertex, neighbors in adjacency.items():
        builder.add_adjacency(vertex, neighbors)
    return builder.build(name)
