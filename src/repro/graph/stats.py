"""Descriptive graph statistics for dataset characterization.

The benchmark reports (Table II analogue in EXPERIMENTS.md) describe each
synthetic stand-in with the same quantities the paper tabulates — |V|, |E|,
size on disk — plus the properties that drive heuristic behaviour: degree
skew and id-order locality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .digraph import DiGraph
from .relabel import locality_score

__all__ = ["GraphStats", "describe", "degree_histogram", "gini"]


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics for one graph."""

    name: str
    num_vertices: int
    num_edges: int
    avg_out_degree: float
    max_out_degree: int
    max_in_degree: int
    degree_gini: float
    locality: float
    csr_bytes: int

    def as_row(self) -> dict:
        """Flat dict for tabular reports."""
        return {
            "graph": self.name,
            "|V|": self.num_vertices,
            "|E|": self.num_edges,
            "avg_deg": round(self.avg_out_degree, 2),
            "max_out": self.max_out_degree,
            "max_in": self.max_in_degree,
            "gini": round(self.degree_gini, 3),
            "locality": round(self.locality, 3),
            "bytes": self.csr_bytes,
        }


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative vector (0 = equal, →1 = skewed).

    Used as a single-number proxy for degree skew; the paper's datasets
    with δ_e ≈ 19 at K=32 correspond to high in-degree Gini.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    if len(v) == 0 or v.sum() == 0:
        return 0.0
    n = len(v)
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / cum[-1]).sum()) / n)


def degree_histogram(graph: DiGraph, *, direction: str = "out"
                     ) -> tuple[np.ndarray, np.ndarray]:
    """``(degree_values, counts)`` of the out- or in-degree distribution."""
    if direction == "out":
        degrees = graph.out_degrees()
    elif direction == "in":
        degrees = graph.in_degrees()
    else:
        raise ValueError("direction must be 'out' or 'in'")
    counts = np.bincount(degrees)
    values = np.nonzero(counts)[0]
    return values, counts[values]


def describe(graph: DiGraph) -> GraphStats:
    """Compute the full :class:`GraphStats` summary for ``graph``."""
    out_deg = graph.out_degrees()
    in_deg = graph.in_degrees()
    n = graph.num_vertices
    return GraphStats(
        name=graph.name,
        num_vertices=n,
        num_edges=graph.num_edges,
        avg_out_degree=float(out_deg.mean()) if n else 0.0,
        max_out_degree=int(out_deg.max()) if n else 0,
        max_in_degree=int(in_deg.max()) if n else 0,
        degree_gini=gini(in_deg),
        locality=locality_score(graph),
        csr_bytes=graph.nbytes(),
    )
