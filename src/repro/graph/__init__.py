"""Graph substrate: CSR digraph, builders, I/O, streams, and generators."""

from .builder import GraphBuilder, from_adjacency, from_edges
from .digraph import AdjacencyRecord, DiGraph
from .generators import (
    barabasi_albert,
    community_web_graph,
    erdos_renyi,
    grid_graph,
    power_law_degrees,
    ring_of_cliques,
    rmat,
)
from .io import (
    read_adjacency,
    read_edge_list,
    read_metis,
    write_adjacency,
    write_edge_list,
    write_metis,
)
from .relabel import (
    bfs_order,
    bfs_relabel,
    degree_order,
    degree_relabel,
    locality_score,
    random_relabel,
)
from .stats import GraphStats, degree_histogram, describe, gini
from .stream import (
    ArrayStream,
    FileStream,
    GraphStream,
    VertexStream,
    as_array_stream,
    shuffled,
)

__all__ = [
    "AdjacencyRecord",
    "ArrayStream",
    "DiGraph",
    "FileStream",
    "GraphBuilder",
    "GraphStats",
    "GraphStream",
    "VertexStream",
    "barabasi_albert",
    "bfs_order",
    "bfs_relabel",
    "community_web_graph",
    "degree_histogram",
    "degree_order",
    "degree_relabel",
    "describe",
    "erdos_renyi",
    "from_adjacency",
    "from_edges",
    "gini",
    "grid_graph",
    "locality_score",
    "power_law_degrees",
    "random_relabel",
    "read_adjacency",
    "read_edge_list",
    "read_metis",
    "ring_of_cliques",
    "rmat",
    "as_array_stream",
    "shuffled",
    "write_adjacency",
    "write_edge_list",
    "write_metis",
]
