"""Vertex relabeling to impose or destroy topology locality.

SPNL's Range pre-assignment (paper Sec. IV-C) rests on one empirical fact:
public web graphs are stored in BFS crawl order, so consecutive vertex ids
tend to be topologically close.  These helpers let experiments control that
property explicitly:

* :func:`bfs_order` / :func:`bfs_relabel` — impose crawl-like locality;
* :func:`random_relabel` — destroy locality (ablation: SPNL should fall
  back toward SPN quality);
* :func:`degree_order` — hubs-first numbering, a common alternate layout;
* :func:`locality_score` — quantifies how local an id ordering is, so
  tests can assert relabeling did what it claims.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .digraph import DiGraph

__all__ = [
    "bfs_order", "bfs_relabel", "random_relabel", "degree_order",
    "degree_relabel", "locality_score",
]


def bfs_order(graph: DiGraph, *, start: int = 0,
              undirected: bool = True) -> np.ndarray:
    """Visit order of a BFS over ``graph`` (restarting on each component).

    Returns ``order`` with ``order[k]`` = the k-th visited vertex.
    ``undirected=True`` traverses edges both ways, matching how a crawler
    reaches pages regardless of link direction.
    """
    base = graph.to_undirected_csr() if undirected else graph
    n = graph.num_vertices
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    pos = 0
    queue: deque[int] = deque()
    seeds = [start] + [v for v in range(n) if v != start]
    for seed in seeds:
        if visited[seed]:
            continue
        visited[seed] = True
        queue.append(seed)
        while queue:
            v = queue.popleft()
            order[pos] = v
            pos += 1
            for u in base.out_neighbors(v):
                u = int(u)
                if not visited[u]:
                    visited[u] = True
                    queue.append(u)
    assert pos == n
    return order


def _order_to_permutation(order: np.ndarray) -> np.ndarray:
    """Invert a visit order into a ``old_id -> new_id`` permutation."""
    perm = np.empty(len(order), dtype=np.int64)
    perm[order] = np.arange(len(order), dtype=np.int64)
    return perm


def bfs_relabel(graph: DiGraph, *, start: int = 0,
                name: str | None = None) -> DiGraph:
    """Renumber vertices in BFS visit order (crawl-order layout)."""
    perm = _order_to_permutation(bfs_order(graph, start=start))
    return graph.relabeled(perm, name=name or f"{graph.name}-bfs")


def random_relabel(graph: DiGraph, *, seed: int = 0,
                   name: str | None = None) -> DiGraph:
    """Renumber vertices uniformly at random (locality-free layout)."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(graph.num_vertices).astype(np.int64)
    return graph.relabeled(perm, name=name or f"{graph.name}-shuffled")


def degree_order(graph: DiGraph) -> np.ndarray:
    """Vertices sorted by total degree, descending (hubs first)."""
    totals = graph.out_degrees() + graph.in_degrees()
    return np.argsort(-totals, kind="stable").astype(np.int64)


def degree_relabel(graph: DiGraph, *, name: str | None = None) -> DiGraph:
    """Renumber vertices hubs-first."""
    perm = _order_to_permutation(degree_order(graph))
    return graph.relabeled(perm, name=name or f"{graph.name}-bydeg")


def locality_score(graph: DiGraph, *, window: int | None = None) -> float:
    """Fraction of edges whose endpoints' ids differ by at most ``window``.

    ``window`` defaults to ``|V| / 16``.  BFS-ordered web graphs score
    near 1.0; randomly labeled graphs score near ``2·window/|V|``.  The
    sliding-window technique's case-(3) loss (paper Sec. V-A) shrinks as
    this score grows.
    """
    n = graph.num_vertices
    if graph.num_edges == 0 or n == 0:
        return 1.0
    if window is None:
        window = max(1, n // 16)
    src, dst = graph.edge_array()
    return float(np.mean(np.abs(src - dst) <= window))
