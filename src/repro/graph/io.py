"""Graph file formats: edge list, adjacency list, and METIS.

The paper streams graphs from disk as **adjacency-list** text files (one line
``v u1 u2 ...`` per vertex, ids consecutive).  We support:

* ``edge list`` — one ``src dst`` pair per line, ``#``/``%`` comments
  (SNAP / WebGraph dumps look like this);
* ``adjacency list`` — the paper's streamed format;
* ``METIS`` — 1-indexed undirected adjacency with a header line, accepted by
  real METIS and by our multilevel baseline.

All readers/writers transparently handle ``.gz`` paths.

Edge-list and adjacency readers default to the chunked NumPy tokenizer
in :mod:`repro.ingest.chunked` (``engine="chunked"``); the original
line-by-line parser remains available as ``engine="python"`` and is kept
as the baseline for the ingest benchmarks.  Both engines are
byte-identical in output, error messages, and strict/lenient policy
behavior.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterator

import numpy as np

from .builder import GraphBuilder
from .digraph import DiGraph

__all__ = [
    "read_edge_list", "write_edge_list",
    "read_adjacency", "write_adjacency",
    "read_metis", "write_metis",
    "iter_adjacency_lines",
]

_COMMENT_PREFIXES = ("#", "%", "//")

_ENGINES = ("chunked", "python")


def _check_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown parse engine {engine!r}; expected one of {_ENGINES}")


def _open_text(path: str | Path, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _is_comment(line: str) -> bool:
    stripped = line.lstrip()
    return not stripped or stripped.startswith(_COMMENT_PREFIXES)


# ----------------------------------------------------------------------
# Edge list
# ----------------------------------------------------------------------
def read_edge_list(path: str | Path, *, num_vertices: int | None = None,
                   name: str | None = None, policy=None,
                   engine: str = "chunked") -> DiGraph:
    """Read a directed edge-list file (``src dst`` per line).

    Malformed lines raise :class:`ValueError` carrying the file path and
    1-based line number; a lenient
    :class:`~repro.recovery.lenient.IngestionPolicy` quarantines them
    instead (up to its error budget).
    """
    _check_engine(engine)
    builder = GraphBuilder(num_vertices)
    if engine == "chunked":
        from ..ingest.chunked import iter_edge_chunks
        for src, dst in iter_edge_chunks(path, policy=policy):
            builder.add_edge_arrays(src, dst)
        return builder.build(name or Path(path).stem)
    if policy is not None:
        policy.begin_scan(path)
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, 1):
            if _is_comment(line):
                continue
            try:
                parts = line.split()
                if len(parts) < 2:
                    raise ValueError(f"malformed edge line: {line!r}")
                builder.add_edge(int(parts[0]), int(parts[1]))
            except ValueError as exc:
                if policy is None:
                    raise ValueError(
                        f"{path}, line {lineno}: {exc}") from exc
                policy.handle(path, lineno, line, exc)
    return builder.build(name or Path(path).stem)


def write_edge_list(graph: DiGraph, path: str | Path) -> None:
    """Write a graph as a directed edge list."""
    with _open_text(path, "w") as fh:
        fh.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                 f"{graph.num_edges} edges\n")
        for src, dst in graph.edges():
            fh.write(f"{src} {dst}\n")


# ----------------------------------------------------------------------
# Adjacency list (the streamed format)
# ----------------------------------------------------------------------
def iter_adjacency_lines(path: str | Path, *, policy=None,
                         engine: str = "chunked"
                         ) -> Iterator[tuple[int, np.ndarray]]:
    """Stream ``(vertex, out-neighbors)`` rows from an adjacency-list file.

    This is the disk-streaming entry point used by
    :class:`repro.graph.stream.FileStream` — it never materializes the
    whole graph, matching the paper's one-pass design.

    Malformed rows raise :class:`ValueError` naming the file and the
    1-based line number.  With a lenient
    :class:`~repro.recovery.lenient.IngestionPolicy` the bad row is
    quarantined and skipped instead, until the policy's error budget is
    exhausted.
    """
    _check_engine(engine)
    if engine == "chunked":
        from ..ingest.chunked import iter_adjacency_rows
        yield from iter_adjacency_rows(path, policy=policy)
        return
    if policy is not None:
        policy.begin_scan(path)
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, 1):
            if _is_comment(line):
                continue
            try:
                parts = line.split()
                vertex = int(parts[0])
                if vertex < 0:
                    raise ValueError(f"negative vertex id {vertex}")
                neighbors = np.asarray([int(p) for p in parts[1:]],
                                       dtype=np.int64)
                if len(neighbors) and neighbors.min() < 0:
                    raise ValueError(
                        f"negative neighbor id {int(neighbors.min())}")
            except ValueError as exc:
                if policy is None:
                    raise ValueError(
                        f"{path}, line {lineno}: {exc}") from exc
                policy.handle(path, lineno, line, exc)
                continue
            yield vertex, neighbors


def read_adjacency(path: str | Path, *, num_vertices: int | None = None,
                   name: str | None = None, policy=None,
                   engine: str = "chunked") -> DiGraph:
    """Read an adjacency-list file fully into a :class:`DiGraph`."""
    _check_engine(engine)
    builder = GraphBuilder(num_vertices)
    if engine == "chunked":
        _bulk_read_adjacency(path, builder, policy)
    else:
        for vertex, neighbors in iter_adjacency_lines(path, policy=policy,
                                                      engine=engine):
            builder.add_adjacency(vertex, neighbors)
    return builder.build(name or Path(path).stem)


def _bulk_read_adjacency(path: str | Path, builder: GraphBuilder,
                         policy) -> None:
    """Vectorized adjacency ingest: whole token segments per append.

    Each clean-row segment becomes one ``add_edge_arrays`` call —
    ``src = repeat(row vertex, out-degree)``, ``dst = tokens minus each
    row's leading vertex`` — so build cost is a few NumPy passes per
    chunk instead of a Python loop per edge.
    """
    from ..ingest.chunked import iter_row_events, parse_adjacency_line
    if policy is not None:
        policy.begin_scan(path)
    for event in iter_row_events(path):
        if event[0] == "rows":
            _, values, splits, _linenos, _chunk = event
            if not len(values):
                continue
            firsts = splits[:-1]
            vertices = values[firsts]
            # Every row extends the id space even when it has no
            # neighbors — ids are non-negative, so the max suffices.
            builder.note_vertex(int(vertices.max()))
            counts = np.diff(splits) - 1
            src = np.repeat(vertices, counts)
            if not len(src):
                continue
            keep = np.ones(len(values), dtype=bool)
            keep[firsts] = False
            builder.add_edge_arrays(src, values[keep])
        else:
            parsed = parse_adjacency_line(path, event[1], event[2], policy)
            if parsed is not None:
                builder.add_adjacency(*parsed)


def write_adjacency(graph: DiGraph, path: str | Path,
                    *, include_isolated: bool = True) -> None:
    """Write a graph in the paper's adjacency-list stream format."""
    with _open_text(path, "w") as fh:
        fh.write(f"# {graph.name}: {graph.num_vertices} vertices, "
                 f"{graph.num_edges} edges\n")
        for record in graph.records():
            if record.out_degree == 0 and not include_isolated:
                continue
            row = " ".join(str(int(u)) for u in record.neighbors)
            fh.write(f"{record.vertex} {row}\n".rstrip() + "\n")


# ----------------------------------------------------------------------
# METIS format
# ----------------------------------------------------------------------
def read_metis(path: str | Path, *, name: str | None = None) -> DiGraph:
    """Read an (unweighted) METIS graph file as a symmetric DiGraph.

    METIS files are 1-indexed and list each undirected edge in both rows;
    we keep the symmetry so the result round-trips through
    :func:`write_metis`.
    """
    with _open_text(path, "r") as fh:
        header: list[str] | None = None
        rows: list[list[int]] = []
        for lineno, line in enumerate(fh, 1):
            if _is_comment(line):
                continue
            parts = line.split()
            if header is None:
                header = parts
                continue
            try:
                rows.append([int(p) - 1 for p in parts])
            except ValueError as exc:
                raise ValueError(f"{path}, line {lineno}: {exc}") from exc
        if header is None:
            raise ValueError("METIS file missing header line")
        declared_n, declared_m = int(header[0]), int(header[1])
        if len(rows) != declared_n:
            raise ValueError(
                f"METIS header declares {declared_n} vertices but file has "
                f"{len(rows)} adjacency rows")
        builder = GraphBuilder(declared_n)
        for vertex, neighbors in enumerate(rows):
            builder.add_adjacency(vertex, neighbors)
        graph = builder.build(name or Path(path).stem)
        if graph.num_edges != 2 * declared_m:
            raise ValueError(
                f"METIS header declares {declared_m} undirected edges but "
                f"file contains {graph.num_edges} directed entries")
        return graph


def write_metis(graph: DiGraph, path: str | Path) -> None:
    """Write the *undirected* view of ``graph`` in METIS format."""
    und = graph.to_undirected_csr()
    with _open_text(path, "w") as fh:
        fh.write(f"{und.num_vertices} {und.num_edges // 2}\n")
        for record in und.records():
            fh.write(" ".join(str(int(u) + 1)
                              for u in record.neighbors) + "\n")
