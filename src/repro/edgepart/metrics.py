"""Quality metrics for edge partitionings.

The edge-partitioning analogue of :mod:`repro.partitioning.metrics`:
replication factor (communication proxy), edge-load balance, and a
combined report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.digraph import DiGraph
from .base import EdgeAssignment

__all__ = ["EdgeQualityReport", "evaluate_edges", "replication_factor",
           "edge_load_balance"]


@dataclass(frozen=True)
class EdgeQualityReport:
    """Quality snapshot of one edge partitioning."""

    graph_name: str
    num_partitions: int
    replication_factor: float
    load_balance: float
    replicated_vertices: int

    def as_row(self) -> dict:
        return {
            "graph": self.graph_name,
            "K": self.num_partitions,
            "RF": round(self.replication_factor, 3),
            "balance": round(self.load_balance, 3),
            "replicated": self.replicated_vertices,
        }

    def __str__(self) -> str:
        return (f"{self.graph_name} K={self.num_partitions}: "
                f"RF={self.replication_factor:.3f} "
                f"balance={self.load_balance:.2f}")


def replication_factor(assignment: EdgeAssignment) -> float:
    """Average replicas per touched vertex (1.0 = no replication)."""
    return assignment.replication_factor()


def edge_load_balance(assignment: EdgeAssignment) -> float:
    """``max |E_p| / (|E|/K)``."""
    counts = assignment.edge_counts()
    if counts.sum() == 0:
        return 1.0
    ideal = counts.sum() / assignment.num_partitions
    return float(counts.max() / ideal)


def evaluate_edges(graph: DiGraph,
                   assignment: EdgeAssignment) -> EdgeQualityReport:
    """Full quality report; validates that every edge was assigned."""
    if assignment.num_edges != graph.num_edges:
        raise ValueError(
            f"assignment covers {assignment.num_edges} edges, graph has "
            f"{graph.num_edges}")
    counts = assignment.replicas.sum(axis=1)
    return EdgeQualityReport(
        graph_name=graph.name,
        num_partitions=assignment.num_partitions,
        replication_factor=replication_factor(assignment),
        load_balance=edge_load_balance(assignment),
        replicated_vertices=int(np.sum(counts > 1)),
    )
