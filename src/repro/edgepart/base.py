"""Streaming *edge* partitioning substrate (paper Sec. VII future work).

Vertex partitioning assigns vertices and cuts edges; edge partitioning
assigns **edges** and replicates vertices — the quality metric becomes
the *replication factor* (average number of partitions holding a copy of
each vertex), which dominates communication in GAS-style systems like
PowerGraph.  The paper's conclusion claims its knowledge-utilization
techniques transfer to this setting; :mod:`repro.edgepart` implements
the classical streaming edge partitioners (Random, DBH, PowerGraph
greedy, HDRF) plus that transfer (:class:`~repro.edgepart.spnl_edge
.SPNLEdgePartitioner`) so the claim can be measured.

This module provides the shared machinery: the replica-set state, the
one-pass driver, and the result type.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from ..graph.digraph import DiGraph

__all__ = ["EdgePartitionState", "EdgeAssignment", "EdgeStreamResult",
           "StreamingEdgePartitioner", "edge_stream"]


def edge_stream(graph: DiGraph) -> Iterator[tuple[int, int]]:
    """Edges in storage order (grouped by source id — crawl order).

    The id-ordered edge stream is the edge-partitioning analogue of the
    paper's "vertices are consecutively numbered and serially streamed"
    premise, and is what gives locality-aware edge partitioners their
    opening.
    """
    yield from graph.edges()


class EdgePartitionState:
    """Mutable local view of a streaming edge partitioner.

    Tracks, per vertex, the set of partitions holding a replica (a
    boolean |V|×K matrix — K ≤ 64 keeps this small), per-partition edge
    loads, and the running partial degree of each vertex (HDRF's
    signal).
    """

    __slots__ = ("num_partitions", "num_vertices", "replicas",
                 "edge_loads", "partial_degrees", "assigned_edges")

    def __init__(self, num_partitions: int, num_vertices: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.num_vertices = num_vertices
        self.replicas = np.zeros((num_vertices, num_partitions),
                                 dtype=bool)
        self.edge_loads = np.zeros(num_partitions, dtype=np.int64)
        self.partial_degrees = np.zeros(num_vertices, dtype=np.int64)
        self.assigned_edges = 0

    # ------------------------------------------------------------------
    def replica_mask(self, vertex: int) -> np.ndarray:
        """Boolean length-K mask of partitions replicating ``vertex``."""
        return self.replicas[vertex]

    def replica_count(self, vertex: int) -> int:
        return int(self.replicas[vertex].sum())

    def place(self, src: int, dst: int, pid: int) -> None:
        """Assign edge ``(src, dst)`` to ``pid`` and update replicas."""
        if not 0 <= pid < self.num_partitions:
            raise ValueError(f"invalid partition id {pid}")
        self.replicas[src, pid] = True
        self.replicas[dst, pid] = True
        self.edge_loads[pid] += 1
        self.partial_degrees[src] += 1
        self.partial_degrees[dst] += 1
        self.assigned_edges += 1

    def replication_factor(self) -> float:
        """Mean replicas per vertex *that appears in some edge*."""
        counts = self.replicas.sum(axis=1)
        touched = counts > 0
        if not touched.any():
            return 0.0
        return float(counts[touched].mean())

    def load_balance(self) -> float:
        """``max load / ideal load`` (the δ_e analogue)."""
        if self.assigned_edges == 0:
            return 1.0
        ideal = self.assigned_edges / self.num_partitions
        return float(self.edge_loads.max() / ideal)


@dataclass
class EdgeAssignment:
    """Immutable outcome: partition id per edge (in stream order)."""

    edge_pids: np.ndarray
    num_partitions: int
    replicas: np.ndarray  # final |V|×K replica matrix

    @property
    def num_edges(self) -> int:
        return len(self.edge_pids)

    def replication_factor(self) -> float:
        counts = self.replicas.sum(axis=1)
        touched = counts > 0
        return float(counts[touched].mean()) if touched.any() else 0.0

    def edge_counts(self) -> np.ndarray:
        return np.bincount(self.edge_pids,
                           minlength=self.num_partitions).astype(np.int64)


@dataclass
class EdgeStreamResult:
    """Result of one streaming edge-partitioning run."""

    assignment: EdgeAssignment
    partitioner: str
    elapsed_seconds: float
    num_partitions: int
    stats: dict[str, Any] = field(default_factory=dict)


class StreamingEdgePartitioner(ABC):
    """One-pass edge partitioner skeleton.

    Subclasses implement :meth:`_choose`, receiving the current edge and
    the shared state, and may override :meth:`_setup` /
    :meth:`_after_place` for extra knowledge structures (the SPNL-E
    variant does).  Balance is enforced the same way as on the vertex
    side: partitions at ``slack·|E|/K`` edges become ineligible.
    """

    def __init__(self, num_partitions: int, *, slack: float = 1.1) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if slack < 1.0:
            raise ValueError("slack must be >= 1.0")
        self.num_partitions = num_partitions
        self.slack = slack

    @property
    def name(self) -> str:
        return type(self).__name__

    def __repr__(self) -> str:
        return f"{self.name}(K={self.num_partitions})"

    # -- hooks -----------------------------------------------------------
    def _setup(self, graph: DiGraph, state: EdgePartitionState) -> None:
        """Allocate partitioner-specific state before the pass."""

    @abstractmethod
    def _choose(self, src: int, dst: int,
                state: EdgePartitionState) -> int:
        """Pick the partition for one edge."""

    def _after_place(self, src: int, dst: int, pid: int,
                     state: EdgePartitionState) -> None:
        """Update partitioner-specific state after a placement."""

    def _extra_stats(self) -> dict[str, Any]:
        return {}

    # -- shared machinery -------------------------------------------------
    def _capacity(self, num_edges: int) -> float:
        return max(1.0, np.ceil(self.slack * num_edges
                                / self.num_partitions))

    def eligible(self, state: EdgePartitionState,
                 capacity: float) -> np.ndarray:
        return state.edge_loads < capacity

    def pick_best(self, scores: np.ndarray, state: EdgePartitionState,
                  capacity: float) -> int:
        """Argmax over eligible partitions; ties to the lightest load."""
        masked = np.where(self.eligible(state, capacity), scores, -np.inf)
        best = masked.max()
        if not np.isfinite(best):
            return int(np.argmin(state.edge_loads))
        candidates = np.nonzero(masked == best)[0]
        if len(candidates) == 1:
            return int(candidates[0])
        return int(candidates[np.argmin(state.edge_loads[candidates])])

    def partition(self, graph: DiGraph) -> EdgeStreamResult:
        """Run the single pass over ``graph``'s edges in storage order."""
        state = EdgePartitionState(self.num_partitions,
                                   graph.num_vertices)
        self._capacity_value = self._capacity(graph.num_edges)
        self._setup(graph, state)
        pids = np.empty(graph.num_edges, dtype=np.int32)
        start = time.perf_counter()
        for i, (src, dst) in enumerate(edge_stream(graph)):
            pid = self._choose(src, dst, state)
            state.place(src, dst, pid)
            self._after_place(src, dst, pid, state)
            pids[i] = pid
        elapsed = time.perf_counter() - start
        assignment = EdgeAssignment(pids, self.num_partitions,
                                    state.replicas.copy())
        return EdgeStreamResult(
            assignment=assignment,
            partitioner=self.name,
            elapsed_seconds=elapsed,
            num_partitions=self.num_partitions,
            stats=self._extra_stats(),
        )
