"""SPNL-E: the paper's knowledge-utilization techniques on edge
partitioning (its Sec. VII future-work claim, implemented and measured).

Three transfers from the vertex partitioner:

1. **Multiplicity expectation (Γ analogue).**  Greedy/HDRF only know
   *whether* a vertex is replicated in a partition (a binary mask).
   SPNL-E counts *how many* of the partition's edges touch the vertex —
   the same "how much does P_i expect x" signal as the vertex side's
   Γ tables — normalized by the vertex's partial degree into an
   affinity in [0, 1].
2. **Topology-locality logical pre-assignment (Range analogue).**  Edge
   streams grouped by source id inherit the crawl-order locality of the
   vertex ids; a Range table over ids supplies a prior for both
   endpoints before any replica exists, fixing the cold-start phase in
   which HDRF places blindly.
3. **Sliding window.**  The multiplicity counters are kept in the same
   fine-grained rotating window (``O(K|V|/X)``) used by vertex SPNL —
   counters behind the stream's source position are dead weight because
   those vertices' remaining edges have already arrived.

Scoring (per partition ``p``, for edge ``(u, v)``):

    score(p) = C_bal(p)                               (HDRF's balance)
             + g(u,p) + g(v,p)                        (HDRF's replicas)
             + mu * (M_p(u)/δ(u) + M_p(v)/δ(v))       (1: multiplicity)
             + nu * ([p = range(u)] + [p = range(v)]) (2: locality)
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..graph.digraph import DiGraph
from ..partitioning.hashing import range_boundaries
from ..partitioning.registry import register
from ..partitioning.window import SlidingWindowStore, default_num_shards
from .base import EdgePartitionState
from .classic import HDRFPartitioner

__all__ = ["SPNLEdgePartitioner"]


@register("spnl-e", kind="edge", summary="HDRF + SPNL locality")
class SPNLEdgePartitioner(HDRFPartitioner):
    """HDRF enriched with SPNL's multiplicity + locality knowledge.

    Parameters
    ----------
    num_partitions:
        ``K``.
    mu:
        Weight of the normalized multiplicity (Γ) affinity.
    nu:
        Weight of the Range-locality prior.
    num_shards:
        Sliding-window ``X`` for the multiplicity counters
        (``"auto"`` applies the paper's rule; 1 keeps full counters).
    """

    def __init__(self, num_partitions: int, *, mu: float = 1.0,
                 nu: float = 1.0, num_shards: int | str = "auto",
                 **kwargs) -> None:
        super().__init__(num_partitions, **kwargs)
        if mu < 0 or nu < 0:
            raise ValueError("mu and nu must be non-negative")
        self.mu = mu
        self.nu = nu
        self.num_shards = num_shards
        self._store: SlidingWindowStore | None = None
        self._boundaries: np.ndarray | None = None

    @property
    def name(self) -> str:
        return "SPNL-E"

    # ------------------------------------------------------------------
    def _setup(self, graph: DiGraph, state: EdgePartitionState) -> None:
        n = graph.num_vertices
        shards = self.num_shards
        if shards == "auto":
            shards = default_num_shards(n, self.num_partitions)
        self._store = SlidingWindowStore(self.num_partitions, n,
                                         num_shards=int(shards))
        self._boundaries = range_boundaries(n, self.num_partitions)

    def _logical_pid(self, vertex: int) -> int:
        pid = int(np.searchsorted(self._boundaries, vertex,
                                  side="right")) - 1
        return min(max(pid, 0), self.num_partitions - 1)

    def _multiplicity_affinity(self, vertex: int,
                               state: EdgePartitionState) -> np.ndarray:
        """``M_p(vertex) / δ(vertex)`` per partition, in [0, 1]."""
        counts = self._store.expectation_of(vertex).astype(np.float64)
        return counts / max(1, state.partial_degrees[vertex])

    def _choose(self, src: int, dst: int,
                state: EdgePartitionState) -> int:
        # the window tracks the stream's source position
        self._store.advance_to(src)

        d_src = state.partial_degrees[src] + 1
        d_dst = state.partial_degrees[dst] + 1
        theta_src = d_src / (d_src + d_dst)
        theta_dst = 1.0 - theta_src
        g_src = state.replica_mask(src) * (1.0 + (1.0 - theta_src))
        g_dst = state.replica_mask(dst) * (1.0 + (1.0 - theta_dst))

        loads = state.edge_loads
        spread = loads.max() - loads.min()
        c_bal = self.bal_weight * (loads.max() - loads) / (self.epsilon
                                                           + spread)

        mult = (self._multiplicity_affinity(src, state)
                + self._multiplicity_affinity(dst, state))

        locality = np.zeros(self.num_partitions)
        locality[self._logical_pid(src)] += 1.0
        locality[self._logical_pid(dst)] += 1.0

        scores = (c_bal + g_src + g_dst + self.mu * mult
                  + self.nu * locality)
        return self.pick_best(scores, state, self._capacity_value)

    def _after_place(self, src: int, dst: int, pid: int,
                     state: EdgePartitionState) -> None:
        # Γ analogue: the new edge raises p's expectation for both
        # endpoints' *future* edges.
        self._store.record(pid, np.array([src, dst], dtype=np.int64))

    def _extra_stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = {"mu": self.mu, "nu": self.nu}
        if self._store is not None:
            stats.update(window_size=self._store.window_size,
                         expectation_bytes=self._store.nbytes())
        return stats
