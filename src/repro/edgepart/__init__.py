"""Streaming edge partitioning — the paper's future-work direction."""

from .base import (
    EdgeAssignment,
    EdgePartitionState,
    EdgeStreamResult,
    StreamingEdgePartitioner,
    edge_stream,
)
from .gas import gas_sync_report, simulate_gas_job
from .classic import (
    DBHPartitioner,
    GreedyEdgePartitioner,
    HDRFPartitioner,
    RandomEdgePartitioner,
)
from .metrics import (
    EdgeQualityReport,
    edge_load_balance,
    evaluate_edges,
    replication_factor,
)
from .spnl_edge import SPNLEdgePartitioner

__all__ = [
    "DBHPartitioner",
    "EdgeAssignment",
    "EdgePartitionState",
    "EdgeQualityReport",
    "EdgeStreamResult",
    "GreedyEdgePartitioner",
    "HDRFPartitioner",
    "RandomEdgePartitioner",
    "SPNLEdgePartitioner",
    "StreamingEdgePartitioner",
    "edge_load_balance",
    "edge_stream",
    "gas_sync_report",
    "simulate_gas_job",
    "evaluate_edges",
    "replication_factor",
]
