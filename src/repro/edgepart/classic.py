"""Classical streaming edge partitioners: Random, DBH, Greedy, HDRF.

These are the baselines the edge-partitioning literature (and the
paper's related work, Sec. III-B) measures against:

* **Random** — hash each edge; RF approaches ``K`` on dense graphs;
* **DBH** (Xie et al., NIPS 2014) — hash by the *lower-degree* endpoint,
  so hubs get replicated (they would be anyway) and tails stay whole;
* **Greedy** (PowerGraph, OSDI 2012) — the four-case replica-affinity
  rule;
* **HDRF** (Petroni et al., CIKM 2015) — greedy with a partial-degree
  tilt: prefer replicating the *higher*-degree endpoint.
"""

from __future__ import annotations

import numpy as np

from ..partitioning.registry import register
from .base import EdgePartitionState, StreamingEdgePartitioner

__all__ = ["RandomEdgePartitioner", "DBHPartitioner",
           "GreedyEdgePartitioner", "HDRFPartitioner"]

_HASH_MULT = 2654435761


def _hash(value: int, k: int) -> int:
    return int((value * _HASH_MULT) % 2**32 % k)


@register("random", kind="edge", summary="random edge placement")
class RandomEdgePartitioner(StreamingEdgePartitioner):
    """Hash of the edge pair — the zero-knowledge floor."""

    @property
    def name(self) -> str:
        return "Random-E"

    def _choose(self, src: int, dst: int,
                state: EdgePartitionState) -> int:
        return _hash(src * 1_000_003 + dst, self.num_partitions)


@register("dbh", kind="edge", summary="degree-based hashing")
class DBHPartitioner(StreamingEdgePartitioner):
    """Degree-Based Hashing: hash the endpoint with smaller partial
    degree (ties → smaller id), replicating hubs preferentially."""

    @property
    def name(self) -> str:
        return "DBH"

    def _choose(self, src: int, dst: int,
                state: EdgePartitionState) -> int:
        d_src = state.partial_degrees[src]
        d_dst = state.partial_degrees[dst]
        if d_src < d_dst or (d_src == d_dst and src <= dst):
            anchor = src
        else:
            anchor = dst
        return _hash(anchor, self.num_partitions)


@register("greedy", kind="edge", summary="PowerGraph greedy")
class GreedyEdgePartitioner(StreamingEdgePartitioner):
    """PowerGraph's greedy heuristic.

    Case analysis on the replica sets ``A(u)``, ``A(v)``:

    1. ``A(u) ∩ A(v) ≠ ∅`` → any common partition (least loaded);
    2. both non-empty but disjoint → a partition of the higher-degree
       endpoint's set (it will be replicated less often later);
    3. exactly one non-empty → one of its partitions;
    4. both empty → least-loaded partition.
    """

    @property
    def name(self) -> str:
        return "Greedy-E"

    def _choose(self, src: int, dst: int,
                state: EdgePartitionState) -> int:
        a_src = state.replica_mask(src)
        a_dst = state.replica_mask(dst)
        both = a_src & a_dst
        capacity = self._capacity_value
        if both.any():
            return self.pick_best(both.astype(float), state, capacity)
        if a_src.any() and a_dst.any():
            # favor the set of the endpoint with larger partial degree
            if state.partial_degrees[src] >= state.partial_degrees[dst]:
                preferred = a_src
            else:
                preferred = a_dst
            return self.pick_best(preferred.astype(float), state, capacity)
        if a_src.any() or a_dst.any():
            present = a_src if a_src.any() else a_dst
            return self.pick_best(present.astype(float), state, capacity)
        return self.pick_best(np.zeros(self.num_partitions), state,
                              capacity)


@register("hdrf", kind="edge", summary="high-degree replicated first")
class HDRFPartitioner(StreamingEdgePartitioner):
    """High-Degree Replicated First (Petroni et al.).

    Score for partition ``p``:

        C_rep(p) = g(src, p) + g(dst, p)
        g(v, p)  = [p ∈ A(v)] · (1 + (1 - θ_v)),
                   θ_v = δ(v) / (δ(src) + δ(dst))    (partial degrees)
        C_bal(p) = bal_weight · (max_load - load_p)
                              / (ε + max_load - min_load)

    The degree tilt makes the *low*-degree endpoint's replicas more
    attractive, so hubs absorb the replication — the right call on
    power-law graphs.
    """

    def __init__(self, num_partitions: int, *, bal_weight: float = 1.0,
                 epsilon: float = 1.0, **kwargs) -> None:
        super().__init__(num_partitions, **kwargs)
        self.bal_weight = bal_weight
        self.epsilon = epsilon

    @property
    def name(self) -> str:
        return "HDRF"

    def _choose(self, src: int, dst: int,
                state: EdgePartitionState) -> int:
        d_src = state.partial_degrees[src] + 1
        d_dst = state.partial_degrees[dst] + 1
        theta_src = d_src / (d_src + d_dst)
        theta_dst = 1.0 - theta_src
        g_src = state.replica_mask(src) * (1.0 + (1.0 - theta_src))
        g_dst = state.replica_mask(dst) * (1.0 + (1.0 - theta_dst))
        loads = state.edge_loads
        spread = loads.max() - loads.min()
        c_bal = self.bal_weight * (loads.max() - loads) / (self.epsilon
                                                           + spread)
        return self.pick_best(g_src + g_dst + c_bal, state,
                              self._capacity_value)
