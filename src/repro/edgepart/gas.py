"""GAS (Gather-Apply-Scatter) synchronization cost of an edge partitioning.

Vertex partitioning's downstream cost is cut-edge messages (the BSP
engine measures it); edge partitioning's downstream cost is **replica
synchronization**: in PowerGraph-style systems each vertex has one
master and ``|A(v)| - 1`` mirrors, and every superstep the gather phase
ships each mirror's partial accumulator to the master (one message) and
the apply phase ships the new vertex value back to each mirror (another
message).  Total sync traffic per superstep is therefore

    Σ_v 2·(|A(v)| − 1)  =  2·|V_touched|·(RF − 1)

which is exactly why replication factor is *the* quality metric on this
side.  This module turns an :class:`~repro.edgepart.base.EdgeAssignment`
into that communication profile so edge partitioners can be compared on
simulated cluster time with the same machinery as the vertex side
(:func:`repro.runtime.cluster.simulate_job`).
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from ..runtime.cluster import ClusterModel, JobCostReport, simulate_job
from ..runtime.comm import CommReport
from .base import EdgeAssignment

__all__ = ["gas_sync_report", "simulate_gas_job"]


def gas_sync_report(graph: DiGraph, assignment: EdgeAssignment, *,
                    supersteps: int = 1) -> CommReport:
    """Communication profile of ``supersteps`` GAS iterations.

    Per superstep and partition ``p`` the report charges:

    * *received*: the local work — one gather contribution per edge
      hosted by ``p`` (each edge touches its two endpoint replicas);
    * *remote in/out*: the mirror sync — every mirror exchanges one
      message with its master in each direction.  Masters are assigned
      to each vertex's first replica partition (PowerGraph's default).
    """
    if assignment.num_edges != graph.num_edges:
        raise ValueError("assignment does not cover this graph's edges")
    k = assignment.num_partitions
    replicas = assignment.replicas
    counts = replicas.sum(axis=1)
    touched = counts > 0

    # master = lowest partition id holding a replica
    master = np.where(touched, np.argmax(replicas, axis=1), -1)

    # mirrors per partition / masters' mirror fan-in per partition
    mirrors_per_partition = replicas.sum(axis=0)  # includes masters
    masters_per_partition = np.bincount(master[touched], minlength=k)
    mirror_only = mirrors_per_partition - masters_per_partition

    # remote messages: each mirror sends 1 (gather) and receives 1
    # (apply); its master does the opposite end.
    remote_out = mirror_only.astype(np.int64)
    fanin = np.zeros(k, dtype=np.int64)
    for pid in range(k):
        # masters in pid receive one message per mirror of their vertex
        owned = (master == pid) & touched
        if owned.any():
            fanin[pid] = int((counts[owned] - 1).sum())
    remote_in = fanin

    # local compute: every hosted edge contributes two endpoint updates
    edge_loads = assignment.edge_counts()
    received = 2 * edge_loads

    comm = CommReport(num_partitions=k)
    total_remote = int(remote_out.sum() + remote_in.sum())
    total_local = int(received.sum())
    for step in range(supersteps):
        comm.record(step, local=total_local, remote=total_remote,
                    active=int(touched.sum()),
                    received=received,
                    remote_in=remote_in + remote_out,  # both directions
                    remote_out=remote_in + remote_out)
    return comm


def simulate_gas_job(graph: DiGraph, assignment: EdgeAssignment, *,
                     supersteps: int = 10,
                     model: ClusterModel | None = None) -> JobCostReport:
    """Cluster cost of a GAS job over this edge partitioning."""
    comm = gas_sync_report(graph, assignment, supersteps=supersteps)
    return simulate_job(comm, model)
