"""Admission control: shed load *before* the queue saturates.

The PR-6 server had exactly one overload response: ``backpressure``
when the bounded engine queue was completely full.  That is a backstop,
not a policy — by the time the queue is full, every queued request is
already paying worst-case latency, and the clients that *will* be
rejected have already burned a round trip to find out.  Production
admission control sheds earlier and smarter:

* **Queue-depth watermark** — reject ``place`` traffic with
  ``overloaded`` once the queue passes a fraction of its capacity,
  keeping headroom for the read path and for in-flight bursts to
  complete.  ``backpressure`` remains the final backstop for the race
  where the queue fills between the check and the put.
* **Engine-lag watermark** — queue *depth* understates overload when
  groups are slow (a throttled disk, a degraded engine).  The
  controller tracks an EWMA of per-request apply time; depth × EWMA is
  the expected wait, and beyond ``max_lag_seconds`` the server is
  overloaded no matter how short the queue looks.
* **Deadline budgets** — a request carrying ``deadline_ms`` (protocol
  v1.1, additive) is rejected up front with ``deadline_exceeded`` when
  the expected wait already exceeds its remaining budget: failing in
  microseconds is strictly kinder than failing after the deadline has
  been missed — the client has the freshest possible signal to try a
  replica or degrade its own answer.

Every shed is counted per error code; ``shed_rate`` (sheds over total
admission decisions) is the headline number the overload bench records
and the chaos harness bounds.
"""

from __future__ import annotations

import math
import threading
from typing import Any

__all__ = ["AdmissionController", "AdmissionDecision"]


class AdmissionDecision:
    """One rejected admission: a typed error code + human message."""

    __slots__ = ("code", "message")

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        self.message = message


class AdmissionController:
    """Watermark + deadline admission for one bounded engine queue.

    Parameters
    ----------
    queue_capacity:
        The engine queue bound (``queue_depth`` on the server).
    shed_watermark:
        Fraction of capacity beyond which ``place`` traffic sheds with
        ``overloaded``.  ``1.0`` disables early shedding (the full
        queue still answers ``backpressure``).
    max_lag_seconds:
        Expected-wait ceiling (depth × EWMA apply seconds per request);
        ``None`` disables the lag watermark.
    ewma_alpha:
        Smoothing of the per-request apply-time estimate.
    """

    def __init__(self, queue_capacity: int, *,
                 shed_watermark: float = 0.85,
                 max_lag_seconds: float | None = None,
                 ewma_alpha: float = 0.2) -> None:
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if not 0.0 < shed_watermark <= 1.0:
            raise ValueError("shed_watermark must be in (0, 1]")
        if max_lag_seconds is not None and max_lag_seconds <= 0:
            raise ValueError("max_lag_seconds must be > 0")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.queue_capacity = queue_capacity
        self.shed_watermark = shed_watermark
        self.max_lag_seconds = max_lag_seconds
        self._ewma_alpha = ewma_alpha
        self._watermark_depth = max(
            1, math.ceil(shed_watermark * queue_capacity))
        self._lock = threading.Lock()
        self._ewma_request_seconds = 0.0
        self._accepted = 0
        self._shed: dict[str, int] = {}

    # -- engine feedback -----------------------------------------------
    def observe_group(self, seconds: float, requests: int) -> None:
        """Feed one applied engine group's timing into the lag EWMA."""
        if requests < 1:
            return
        per_request = seconds / requests
        with self._lock:
            if self._ewma_request_seconds == 0.0:
                self._ewma_request_seconds = per_request
            else:
                a = self._ewma_alpha
                self._ewma_request_seconds = (
                    a * per_request + (1 - a) * self._ewma_request_seconds)

    def expected_wait(self, queue_depth: int,
                      inflight: int = 0) -> float:
        """Estimated seconds a request admitted now waits for its ack.

        ``inflight`` counts requests already dequeued but not yet acked
        — with a pipelined WAL committer, a group can be applied and
        waiting on its fsync, invisible to queue depth but still ahead
        of this request in the ack order.
        """
        with self._lock:
            return (queue_depth + inflight + 1) \
                * self._ewma_request_seconds

    # -- the admission decision ----------------------------------------
    def admit(self, queue_depth: int, *,
              deadline_remaining: float | None = None,
              inflight: int = 0) -> AdmissionDecision | None:
        """Decide one mutating request; ``None`` admits it.

        ``deadline_remaining`` is the request's remaining budget in
        seconds (``None`` when the client sent no ``deadline_ms``);
        ``inflight`` is the dequeued-but-unacked pipeline depth (see
        :meth:`expected_wait`).  The caller counts the outcome via
        :meth:`count_accept` / :meth:`count_shed` once it is final —
        the queue put can still fail, and that shed must be attributed
        to ``backpressure``.
        """
        if deadline_remaining is not None:
            if deadline_remaining <= 0:
                return AdmissionDecision(
                    "deadline_exceeded",
                    "deadline budget exhausted before admission")
            wait = self.expected_wait(queue_depth, inflight)
            if wait > deadline_remaining:
                return AdmissionDecision(
                    "deadline_exceeded",
                    f"expected engine wait {wait * 1e3:.1f} ms exceeds "
                    f"the request's remaining deadline budget "
                    f"{deadline_remaining * 1e3:.1f} ms")
        if queue_depth >= self._watermark_depth:
            return AdmissionDecision(
                "overloaded",
                f"engine queue depth {queue_depth} is past the shed "
                f"watermark ({self._watermark_depth} of "
                f"{self.queue_capacity}); retry shortly")
        if self.max_lag_seconds is not None:
            wait = self.expected_wait(queue_depth, inflight)
            if wait > self.max_lag_seconds:
                return AdmissionDecision(
                    "overloaded",
                    f"expected engine wait {wait * 1e3:.1f} ms is past "
                    f"the {self.max_lag_seconds * 1e3:.0f} ms lag "
                    f"watermark; retry shortly")
        return None

    # -- accounting ----------------------------------------------------
    def count_accept(self) -> None:
        with self._lock:
            self._accepted += 1

    def count_shed(self, code: str) -> None:
        with self._lock:
            self._shed[code] = self._shed.get(code, 0) + 1

    def stats(self) -> dict[str, Any]:
        with self._lock:
            shed_total = sum(self._shed.values())
            decisions = self._accepted + shed_total
            return {
                "accepted": self._accepted,
                "shed": dict(sorted(self._shed.items())),
                "shed_total": shed_total,
                "shed_rate": (shed_total / decisions) if decisions else 0.0,
                "watermark_depth": self._watermark_depth,
                "ewma_request_seconds": self._ewma_request_seconds,
            }
