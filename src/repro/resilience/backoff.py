"""The one backoff implementation the whole repo shares.

Every retry loop in the codebase used to roll its own sleep schedule —
:class:`~repro.graph.stream.FileStream` slept ``backoff * 2**(n-1)``
with no ceiling (a 10-attempt budget at the default 50 ms base would
happily sleep 25 s on the final attempt), and
:class:`~repro.service.client.ServiceClient` slept exactly the server's
``retry_after_ms`` hint, which synchronizes every backing-off client
into retry *waves* that re-saturate the queue the instant it drains.

:class:`BackoffPolicy` fixes both failure modes in one place:

* **capped exponential growth** — the ideal delay doubles per attempt
  but never exceeds ``cap``, so a long outage costs bounded patience
  per attempt instead of runaway sleeps;
* **full jitter** (the AWS architecture-blog scheme): the actual delay
  is drawn uniformly from ``[0, ideal]``, which de-correlates
  concurrent retriers and empirically minimizes total work to clear a
  thundering herd;
* **a floor** for server-supplied hints (``retry_after_ms``): the draw
  never undercuts what the server asked for, so honoring explicit
  backpressure still composes with jitter.

Seeded construction makes schedules reproducible where tests need
determinism; the default (unseeded) draws fresh entropy like any
production retry loop should.
"""

from __future__ import annotations

import random

__all__ = ["BackoffPolicy"]


class BackoffPolicy:
    """Capped exponential backoff with full jitter.

    Parameters
    ----------
    base:
        Ideal delay of the first retry, in seconds.
    cap:
        Upper bound on the ideal delay (the exponential stops growing
        here).  An explicit ``floor`` larger than the cap still wins —
        a server's ``retry_after`` hint is a contract, not a suggestion.
    jitter:
        ``True`` (default) draws the actual delay uniformly from
        ``[floor, ideal]``; ``False`` returns the ideal delay itself
        (deterministic, for tests that assert exact schedules).
    seed:
        Seeds the jitter RNG for reproducible schedules; ``None`` uses
        fresh entropy.
    """

    def __init__(self, base: float = 0.05, cap: float = 2.0, *,
                 jitter: bool = True, seed: int | None = None) -> None:
        if base < 0:
            raise ValueError("base must be >= 0")
        if cap < base:
            raise ValueError("cap must be >= base")
        self.base = float(base)
        self.cap = float(cap)
        self.jitter = jitter
        self._rng = random.Random(seed)

    def ideal(self, attempt: int) -> float:
        """The un-jittered delay for 1-based retry ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        # Compare exponents, not powers: 2**attempt overflows no float
        # for any sane attempt count but grows needlessly large.
        ideal = self.base * 2.0 ** min(attempt - 1, 62)
        return min(self.cap, ideal)

    def delay(self, attempt: int, *, floor: float = 0.0) -> float:
        """Seconds to sleep before 1-based retry ``attempt``.

        ``floor`` is the minimum acceptable delay — pass a server's
        ``retry_after_ms / 1000`` here and the jittered draw will honor
        it even when it exceeds :attr:`cap`.
        """
        ideal = self.ideal(attempt)
        if not self.jitter:
            return max(floor, ideal)
        if ideal <= floor:
            return floor
        return self._rng.uniform(floor, ideal)
