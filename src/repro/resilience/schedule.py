"""Deterministic chaos schedules: declarative, replayable fault scripts.

PR 3/6/7 each shipped point fault injectors — torn snapshots, a flaky
scorer, SIGKILLed workers, and now a flaky WAL and a throttled engine.
This module composes them into *schedules*: "at step 2 the WAL dies, at
step 5 it comes back, recover at step 6" written as data, executed
against a real server over real sockets, with the outcome of every step
recorded.  Because every injector is positional or seeded (never
wall-clock) and the driver is a single synchronous client, running the
same schedule twice produces the *identical* trace — which turns "the
server survives WAL outages" from a flaky integration test into a
replayable, diffable contract.

Three registry-wide invariants are checked after every run:

* ``acked_durable`` — every placement the server acknowledged is served
  identically by a fresh process revived from the snapshot directory,
  even when the teardown is a simulated crash (no final snapshot, no
  graceful drain).  Acks failed during the outage are *expected* to be
  absent; acks given are never lost.
* ``route_parity`` — the revived route table byte-matches the live
  server's answers for every acked vertex (WAL replay re-scores every
  entry, so this also proves log and code still agree).
* ``shed_bounded`` — the admission controller's shed rate stayed within
  the schedule's declared budget: degrading is allowed, collapsing into
  reject-everything is not.

The executor variant (:func:`run_executor_schedule`) replays
``kill_worker`` events against the process-sharded executor and holds
it to byte-identical assignment parity with a clean run.

Schedules round-trip through JSON (:meth:`ChaosSchedule.to_dict` /
``from_dict``), which is what the ``repro-partition chaos`` CLI and the
executable docs consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["ChaosReport", "ChaosSchedule", "FaultEvent", "run_schedule",
           "run_executor_schedule", "SCENARIOS"]

#: Actions a service schedule understands, mapped to the injector each
#: drives.  ``kill_worker`` fires against the sharded server's worker
#: pool (no-op on a single-process server) — params: ``worker`` picks
#: the victim, ``mid_group`` SIGKILLs *inside* the next scoring
#: group's dispatch window instead of between steps.  It also runs
#: executor-side (see :func:`run_executor_schedule`).
_SERVICE_ACTIONS = ("fail_wal", "restore_wal", "slow_engine",
                    "restore_engine", "try_recover", "snapshot",
                    "kill_worker")
_EXECUTOR_ACTIONS = ("kill_worker",)


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault: *at* ``step``, *do* ``action``.

    ``step`` counts the schedule's driver iterations (service mode) or
    the executor's dispatch group index (``kill_worker``).  ``params``
    carries the action's knobs (``throttle_seconds`` for
    ``slow_engine``, ``worker`` for ``kill_worker``).
    """

    step: int
    action: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError("step must be >= 0")
        if self.action not in _SERVICE_ACTIONS + _EXECUTOR_ACTIONS:
            raise ValueError(
                f"unknown action {self.action!r}; known: "
                f"{list(_SERVICE_ACTIONS + _EXECUTOR_ACTIONS)}")

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"step": self.step, "action": self.action}
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, obj: dict[str, Any]) -> "FaultEvent":
        return cls(step=int(obj["step"]), action=str(obj["action"]),
                   params=dict(obj.get("params") or {}))


@dataclass
class ChaosSchedule:
    """A declarative fault script plus the traffic that exposes it.

    Parameters
    ----------
    name:
        Identifies the schedule in reports and CLI output.
    steps:
        Driver iterations.  Each step fires its due events, then offers
        one ``place_batch`` of ``batch`` vertices (service mode).
    batch:
        Vertices offered per step; a failed step re-offers the same
        chunk next step (a client retrying its load).
    seed:
        Reserved for randomized schedules; recorded in the report so a
        replay names the exact run.
    deadline_ms:
        Optional ``deadline_ms`` budget attached to every offered
        batch (exercises deadline shedding under ``slow_engine``).
    max_shed_rate:
        The ``shed_bounded`` invariant's ceiling on the admission
        controller's shed rate.
    teardown:
        ``"crash"`` (default) revives from durable state only — no
        final snapshot, no graceful drain — which is the honest test of
        the ack contract; ``"graceful"`` closes the server first.
    events:
        The fault script.
    """

    name: str
    steps: int
    batch: int = 16
    seed: int = 0
    deadline_ms: float | None = None
    max_shed_rate: float = 0.9
    teardown: str = "crash"
    events: list[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if not 0.0 <= self.max_shed_rate <= 1.0:
            raise ValueError("max_shed_rate must be in [0, 1]")
        if self.teardown not in ("crash", "graceful"):
            raise ValueError("teardown must be 'crash' or 'graceful'")

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "steps": self.steps,
            "batch": self.batch,
            "seed": self.seed,
            "deadline_ms": self.deadline_ms,
            "max_shed_rate": self.max_shed_rate,
            "teardown": self.teardown,
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, obj: dict[str, Any]) -> "ChaosSchedule":
        return cls(
            name=str(obj["name"]),
            steps=int(obj["steps"]),
            batch=int(obj.get("batch", 16)),
            seed=int(obj.get("seed", 0)),
            deadline_ms=obj.get("deadline_ms"),
            max_shed_rate=float(obj.get("max_shed_rate", 0.9)),
            teardown=str(obj.get("teardown", "crash")),
            events=[FaultEvent.from_dict(e)
                    for e in obj.get("events", [])])

    @classmethod
    def from_json(cls, path: str | Path) -> "ChaosSchedule":
        return cls.from_dict(json.loads(Path(path).read_text()))


class ChaosReport:
    """What one schedule run observed, and whether the invariants held.

    ``trace`` is the deterministic replay record: one entry per step
    with the events fired, the offered batch's outcome (``ok`` or the
    typed error code), and the server's health state after the step.
    ``health_transitions`` is the (from, to, reason) sequence the
    health machine walked.  Two runs of the same schedule must produce
    identical values for both — that equality is itself asserted by the
    chaos suite.
    """

    def __init__(self, schedule: ChaosSchedule) -> None:
        self.schedule = schedule
        self.trace: list[dict[str, Any]] = []
        self.health_transitions: list[tuple[str, str, str]] = []
        self.acked: dict[int, int] = {}
        self.shed_rate = 0.0
        self.shed: dict[str, int] = {}
        self.invariants: list[dict[str, Any]] = []
        self.final_recovery: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return all(inv["ok"] for inv in self.invariants)

    def check(self, name: str, ok: bool, detail: str) -> None:
        self.invariants.append({"name": name, "ok": bool(ok),
                                "detail": detail})

    def replay_key(self) -> tuple:
        """The value that must be identical across replays of one
        schedule: the full step trace + health transition sequence."""
        frozen_trace = tuple(
            (t["step"], tuple(t["events"]), t["outcome"], t["health"])
            for t in self.trace)
        return (frozen_trace, tuple(self.health_transitions))

    def to_dict(self) -> dict[str, Any]:
        return {
            "schedule": self.schedule.to_dict(),
            "ok": self.ok,
            "trace": list(self.trace),
            "health_transitions": [list(t)
                                   for t in self.health_transitions],
            "acked": len(self.acked),
            "shed_rate": self.shed_rate,
            "shed": dict(self.shed),
            "invariants": list(self.invariants),
            "final_recovery": self.final_recovery,
        }


def _fire(event: FaultEvent, service: Any, wal: Any,
          slow_holder: dict[str, Any]) -> None:
    from ..recovery.chaos import SlowEngine
    if event.action == "fail_wal":
        wal.fail()
    elif event.action == "restore_wal":
        wal.restore()
    elif event.action == "slow_engine":
        slow = SlowEngine(
            service, float(event.params.get("throttle_seconds", 0.05)))
        slow.apply()
        slow_holder["slow"] = slow
    elif event.action == "restore_engine":
        slow = slow_holder.pop("slow", None)
        if slow is not None:
            slow.restore()
    elif event.action == "kill_worker":
        import os
        import signal
        pool = getattr(service, "_pool", None)
        if pool is None:
            return  # single-process server: nothing to kill
        procs = [p for p in pool.worker_processes()
                 if p is not None and p.is_alive()]
        if not procs:
            return
        victim = procs[int(event.params.get("worker", 0)) % len(procs)]
        if event.params.get("mid_group"):
            # One-shot barrier hook: the kill lands after the next
            # chunk's dispatch and before its barrier — the worker dies
            # holding a live sub-range, the hardest supervision case.
            def hook(group_index: int, hook_procs: list[Any],
                     _pool: Any = pool, _victim: Any = victim) -> None:
                _pool.barrier_hook = None
                if _victim.is_alive():
                    os.kill(_victim.pid, signal.SIGKILL)
            pool.barrier_hook = hook
        else:
            os.kill(victim.pid, signal.SIGKILL)
    elif event.action == "try_recover":
        service.try_recover()
    elif event.action == "snapshot":
        try:
            service._op_snapshot()
        except Exception:
            pass  # the outcome shows up as health state, not a crash
    else:  # pragma: no cover - from_dict validates
        raise ValueError(f"service schedules cannot run {event.action!r}")


def _crash_stop(service: Any, wal: Any) -> None:
    """Tear a live server down as a crash would leave it.

    Durable state stays exactly what snapshots + fsynced WAL lines
    already hold: no drain, no final snapshot, no pending-entry flush.
    The threads are still stopped cleanly (this is a simulation inside
    one test process), and ``service._closed`` is set so a later
    ``close()`` — e.g. from a ``finally`` — cannot retroactively grant
    the durability a real crash would have denied.
    """
    from ..service import server as server_mod
    with service._close_lock:
        if service._closed:
            return
        service._closed = True
    service._draining.set()
    try:
        service._listener.close()
    except OSError:
        pass
    service._queue.put(server_mod._STOP)
    for thread in service._threads:
        if thread.name == "placement-engine":
            thread.join(10.0)
    committer = getattr(service, "_committer", None)
    if committer is not None:
        # A crash drops in-flight (applied-but-unfsynced) commits on the
        # floor — abort() models exactly that, leaving their clients
        # unanswered rather than acked.
        committer.abort()
    if getattr(service, "_pool", None) is not None:
        try:
            service._teardown_pool()
        except Exception:
            pass  # shm cleanup is best-effort under crash semantics
    try:
        wal.restore()
        wal.close()
    except Exception:
        pass
    service._shutdown_requested.set()


def run_schedule(schedule: ChaosSchedule, graph: Any, *,
                 workdir: str | Path, config: Any = None,
                 server_kwargs: dict[str, Any] | None = None
                 ) -> ChaosReport:
    """Execute ``schedule`` against a live placement server.

    Boots a durable :class:`~repro.service.PlacementService` (WAL via
    the :class:`~repro.recovery.chaos.FlakyWAL` injector) under
    ``workdir``, drives it over TCP with one synchronous client, then
    tears it down per the schedule and revives from durable state to
    verify the invariants.  Returns the :class:`ChaosReport`;
    invariant *violations* are reported, not raised — callers (the
    chaos suite, the CLI) decide how loudly to fail.
    """
    from ..recovery.chaos import FlakyWAL
    from ..service.client import ServiceClient, ServiceError
    from ..service.server import PlacementService

    workdir = Path(workdir)
    snap_dir = workdir / f"chaos-{schedule.name}"
    holder: dict[str, Any] = {}

    def wal_factory(directory: Any, *, start: int = 0,
                    fsync: bool = True) -> FlakyWAL:
        holder["wal"] = FlakyWAL(directory, start=start, fsync=fsync)
        return holder["wal"]

    report = ChaosReport(schedule)
    slow_holder: dict[str, Any] = {}
    kwargs = dict(server_kwargs or {})
    service = PlacementService.start(
        graph, config=config, snapshot_dir=snap_dir,
        wal_factory=wal_factory, **kwargs)
    wal = holder["wal"]
    client = ServiceClient(*service.address)
    cursor = 0
    try:
        for step in range(schedule.steps):
            fired = [e.action for e in schedule.events if e.step == step]
            for event in schedule.events:
                if event.step == step:
                    _fire(event, service, wal, slow_holder)
            stop = min(cursor + schedule.batch, graph.num_vertices)
            outcome = "idle"
            if cursor < stop:
                chunk = list(range(cursor, stop))
                try:
                    results = client.place_batch(
                        chunk, deadline_ms=schedule.deadline_ms)
                except ServiceError as exc:
                    outcome = exc.code
                else:
                    outcome = "ok"
                    for r in results:
                        report.acked[int(r["vertex"])] = int(r["pid"])
                    cursor = stop
            report.trace.append({"step": step, "events": fired,
                                 "outcome": outcome,
                                 "health": service.health_state})
        report.final_recovery = service.try_recover()
        admission = service.stats()["admission"]
        report.shed_rate = float(admission["shed_rate"])
        report.shed = dict(admission["shed"])
        report.health_transitions = [
            (t["from_state"], t["to_state"], t["reason"])
            for t in service.health_history()]
        live_answers = {v: int(service._state.route[v])
                        for v in report.acked}
        if schedule.teardown == "graceful":
            service.close()
        else:
            _crash_stop(service, wal)
    finally:
        client.close()
        service.close()  # idempotent (and a no-op after _crash_stop)

    revived = PlacementService(graph, config=config,
                               resume_from=snap_dir)
    lost = {v: pid for v, pid in report.acked.items()
            if int(revived._state.route[v]) != pid}
    report.check(
        "acked_durable", not lost,
        f"{len(report.acked)} acked placements revived intact"
        if not lost else
        f"{len(lost)} of {len(report.acked)} acked placements lost "
        f"after revival: {dict(list(lost.items())[:5])}")
    diverged = {v: pid for v, pid in live_answers.items()
                if int(revived._state.route[v]) != pid}
    report.check(
        "route_parity", not diverged,
        "revived route table matches live answers for every acked vertex"
        if not diverged else
        f"{len(diverged)} acked vertices diverge after revival")
    report.check(
        "shed_bounded",
        report.shed_rate <= schedule.max_shed_rate,
        f"shed rate {report.shed_rate:.3f} vs budget "
        f"{schedule.max_shed_rate:.3f}")
    return report


def run_executor_schedule(schedule: ChaosSchedule, graph: Any, *,
                          method: str = "spnl", parallelism: int = 4,
                          num_workers: int = 2,
                          max_worker_restarts: int = 4) -> ChaosReport:
    """Replay ``kill_worker`` events against the process-sharded
    executor and hold it to clean-run assignment parity.

    ``FaultEvent.step`` is the executor's dispatch group index;
    ``params["worker"]`` picks the victim (default 0).  The invariant
    is the strongest the executor offers: byte-identical assignment to
    an unharmed run, with every kill absorbed by the supervision
    budget.
    """
    from ..graph.stream import GraphStream
    from ..parallel.process import ProcessShardedPartitioner
    from ..partitioning.config import PartitionConfig

    def build() -> ProcessShardedPartitioner:
        base = PartitionConfig(method=method).make()
        return ProcessShardedPartitioner(
            base, parallelism=parallelism, num_workers=num_workers,
            max_worker_restarts=max_worker_restarts,
            restart_backoff=0.0)

    report = ChaosReport(schedule)
    clean = build().partition(GraphStream(graph))

    kills: list[int] = []
    kill_events = [e for e in schedule.events
                   if e.action == "kill_worker"]
    fired: set[int] = set()

    def hook(group_index: int, procs: list[Any]) -> None:
        import os
        import signal
        for idx, event in enumerate(kill_events):
            if idx in fired or event.step != group_index:
                continue
            victim = int(event.params.get("worker", 0)) % len(procs)
            os.kill(procs[victim].pid, signal.SIGKILL)
            fired.add(idx)
            kills.append(group_index)

    chaotic = build()
    chaotic.barrier_hook = hook
    result = chaotic.partition(GraphStream(graph))

    report.trace = [{"step": g, "events": ["kill_worker"],
                     "outcome": "killed", "health": "n/a"}
                    for g in kills]
    restarts = int(result.stats.get("worker_restarts", 0))
    report.check(
        "kills_fired", len(kills) == len(kill_events),
        f"{len(kills)} of {len(kill_events)} scripted kills fired")
    report.check(
        "assignment_parity", result.assignment == clean.assignment,
        "chaotic assignment byte-matches the clean run"
        if result.assignment == clean.assignment else
        "chaotic assignment diverged from the clean run")
    report.check(
        "restarts_within_budget", restarts <= max_worker_restarts,
        f"{restarts} worker restarts within budget "
        f"{max_worker_restarts}")
    return report


def _wal_outage(steps: int = 8) -> ChaosSchedule:
    return ChaosSchedule(
        name="wal-outage", steps=steps, batch=16, max_shed_rate=0.9,
        events=[FaultEvent(2, "fail_wal"),
                FaultEvent(5, "restore_wal"),
                FaultEvent(6, "try_recover")])


def _slow_engine() -> ChaosSchedule:
    # deadline_ms sits 2.5x above the healthy path's worst case and 2.5x
    # below the injected throttle, so both the ok and deadline_exceeded
    # outcomes are deterministic even on a loaded CI runner.
    return ChaosSchedule(
        name="slow-engine", steps=8, batch=16, max_shed_rate=0.9,
        deadline_ms=100.0,
        events=[FaultEvent(2, "slow_engine",
                           {"throttle_seconds": 0.25}),
                FaultEvent(5, "restore_engine")])


def _wal_flap() -> ChaosSchedule:
    return ChaosSchedule(
        name="wal-flap", steps=12, batch=8, max_shed_rate=0.9,
        events=[FaultEvent(1, "fail_wal"),
                FaultEvent(2, "restore_wal"),
                FaultEvent(3, "try_recover"),
                FaultEvent(5, "fail_wal"),
                FaultEvent(7, "restore_wal"),
                FaultEvent(8, "try_recover"),
                FaultEvent(9, "snapshot")])


def _worker_kill() -> ChaosSchedule:
    # Meaningful only against a sharded server (``--processes >= 2``):
    # kill_worker is a documented no-op on a single-process engine.  The
    # second kill lands mid-group via the pool's barrier hook — the
    # worker dies holding a live sub-range, forcing the supervision path
    # (respawn within budget) while acked placements stay durable.
    return ChaosSchedule(
        name="worker-kill", steps=10, batch=16, max_shed_rate=0.9,
        events=[FaultEvent(2, "kill_worker"),
                FaultEvent(5, "kill_worker",
                           {"worker": 1, "mid_group": True}),
                FaultEvent(7, "try_recover"),
                FaultEvent(8, "snapshot")])


#: Named, ready-to-run schedules (the CLI's ``--scenario`` choices).
SCENARIOS = {
    "wal-outage": _wal_outage,
    "slow-engine": _slow_engine,
    "wal-flap": _wal_flap,
    "worker-kill": _worker_kill,
}
