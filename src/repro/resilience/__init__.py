"""Cross-cutting resilience: survive overload and partial failure.

The paper pitches SPN/SPNL as *lightweight* partitioners for production
streaming pipelines; a production placement path needs more than fast
scoring — it needs defined behavior when offered load exceeds capacity
and when a durability mechanism fails underneath a healthy route table.
This package is that behavior, shared by every layer:

* :mod:`~repro.resilience.backoff` — the one backoff implementation
  repo-wide (capped exponential + full jitter), used by
  :class:`~repro.graph.stream.FileStream` retries and the service
  client alike;
* :mod:`~repro.resilience.policy` — bounded :class:`RetryPolicy`
  (attempt + sleep budgets, typed :class:`RetriesExhausted`) and the
  three-state :class:`CircuitBreaker`;
* :mod:`~repro.resilience.health` — the server health-state machine
  (``healthy → degraded → read_only → draining``);
* :mod:`~repro.resilience.admission` — queue-depth/engine-lag
  watermarks and ``deadline_ms`` budget admission for the placement
  service;
* :mod:`~repro.resilience.schedule` — the deterministic chaos-schedule
  harness: declarative, seeded fault scripts composed from the
  :mod:`repro.recovery.chaos` injectors, replayed against a live
  server with registry-wide invariants (no acked placement lost,
  recovery to byte-identical lookups, bounded shed rate).

``schedule`` is loaded lazily: it imports the service stack, which in
turn imports this package's leaf modules — eager re-export would be a
cycle.
"""

from .admission import AdmissionController, AdmissionDecision
from .backoff import BackoffPolicy
from .health import (
    DEGRADED,
    DRAINING,
    HEALTH_STATES,
    HEALTHY,
    READ_ONLY,
    HealthMonitor,
)
from .policy import (
    CircuitBreaker,
    CircuitOpenError,
    RetriesExhausted,
    RetryPolicy,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BackoffPolicy",
    "ChaosReport",
    "ChaosSchedule",
    "CircuitBreaker",
    "CircuitOpenError",
    "DEGRADED",
    "DRAINING",
    "FaultEvent",
    "HEALTH_STATES",
    "HEALTHY",
    "HealthMonitor",
    "READ_ONLY",
    "RetriesExhausted",
    "RetryPolicy",
    "run_schedule",
]

_LAZY = {"ChaosReport", "ChaosSchedule", "FaultEvent", "run_schedule"}


def __getattr__(name: str):
    if name in _LAZY:
        from . import schedule
        return getattr(schedule, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")
