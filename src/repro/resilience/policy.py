"""Client-side resilience: bounded retries and the circuit breaker.

Retrying forever is how a transient brownout becomes a permanent one:
every stuck client keeps offering load to a server that needs the
opposite.  :class:`RetryPolicy` bounds a retry loop on *two* axes — a
maximum attempt count and a total sleep budget — and always backs off
through the repo's one :class:`~repro.resilience.backoff.BackoffPolicy`
(capped exponential + full jitter).  When the budget runs out the loop
raises :class:`RetriesExhausted` carrying the last underlying error, so
callers see a typed, actionable outcome instead of the N-th raw
``backpressure`` frame.

:class:`CircuitBreaker` protects the other direction: when a peer is
failing *hard* (consecutive failures past a threshold) there is no
point paying a round trip to learn it again, and every skipped request
is capacity the struggling peer gets back.  The breaker is the classic
three-state machine:

* ``closed`` — traffic flows; consecutive failures are counted.
* ``open`` — requests fail fast locally until ``reset_after`` seconds
  (or the peer's own ``retry_after`` hint, whichever is larger) have
  passed.
* ``half_open`` — exactly one probe request is let through; success
  closes the breaker, failure re-opens it.

The clock is injectable so the full state machine is unit-testable
without sleeping.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from .backoff import BackoffPolicy

__all__ = ["CircuitBreaker", "CircuitOpenError", "RetriesExhausted",
           "RetryPolicy"]


class RetriesExhausted(RuntimeError):
    """A bounded retry loop ran out of budget.

    Carries the diagnosis a caller needs: how many attempts were made,
    how long the loop slept in total, and — in :attr:`last_error` — the
    final underlying error (for the placement service, the last
    :class:`~repro.service.client.ServiceError` the server answered).
    """

    def __init__(self, message: str, *, attempts: int, slept: float,
                 last_error: BaseException | None = None) -> None:
        super().__init__(message)
        self.attempts = attempts
        self.slept = slept
        self.last_error = last_error


class RetryPolicy:
    """A bounded, jittered retry schedule.

    Parameters
    ----------
    max_attempts:
        Retries after the initial try (0 = never retry).
    base_backoff, max_backoff:
        The underlying :class:`BackoffPolicy` knobs (first-retry ideal
        delay and the cap the exponential growth stops at).
    total_budget:
        Upper bound on *cumulative* sleep seconds across the whole
        loop; ``None`` bounds by attempts alone.  A loop that would
        exceed the budget raises :class:`RetriesExhausted` instead of
        sleeping.
    jitter, seed:
        Forwarded to :class:`BackoffPolicy`.
    """

    def __init__(self, max_attempts: int = 5, *,
                 base_backoff: float = 0.025, max_backoff: float = 1.0,
                 total_budget: float | None = None, jitter: bool = True,
                 seed: int | None = None) -> None:
        if max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if total_budget is not None and total_budget < 0:
            raise ValueError("total_budget must be >= 0")
        self.max_attempts = max_attempts
        self.total_budget = total_budget
        self.backoff = BackoffPolicy(base_backoff, max_backoff,
                                     jitter=jitter, seed=seed)

    def call(self, fn: Callable[[], Any], *,
             retry_on: tuple[type[BaseException], ...] = (Exception,),
             floor_hint: Callable[[BaseException], float] | None = None,
             sleep: Callable[[float], None] = time.sleep) -> Any:
        """Run ``fn`` under this policy.

        ``retry_on`` selects which exceptions are transient;
        ``floor_hint`` maps a caught error to a minimum delay (the
        ``retry_after_ms`` extraction for service errors).  Anything
        not in ``retry_on`` propagates untouched.
        """
        attempt = 0
        slept = 0.0
        while True:
            try:
                return fn()
            except retry_on as exc:
                attempt += 1
                if attempt > self.max_attempts:
                    raise RetriesExhausted(
                        f"retry budget exhausted after {attempt} "
                        f"attempts ({slept:.3f}s slept): {exc}",
                        attempts=attempt, slept=slept,
                        last_error=exc) from exc
                floor = floor_hint(exc) if floor_hint is not None else 0.0
                delay = self.backoff.delay(attempt, floor=floor)
                if self.total_budget is not None \
                        and slept + delay > self.total_budget:
                    raise RetriesExhausted(
                        f"retry sleep budget ({self.total_budget}s) "
                        f"exhausted after {attempt} attempts "
                        f"({slept:.3f}s slept): {exc}",
                        attempts=attempt, slept=slept,
                        last_error=exc) from exc
                if delay:
                    sleep(delay)
                slept += delay


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open; the request was not attempted."""

    def __init__(self, message: str, *, retry_after: float) -> None:
        super().__init__(message)
        #: Seconds until the breaker will admit a half-open probe.
        self.retry_after = retry_after


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a half-open probe.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_after:
        Seconds the breaker stays open before admitting one probe.  A
        peer-supplied ``retry_after`` hint recorded with the tripping
        failure extends this when larger — the breaker never probes
        earlier than the peer asked.
    clock:
        Monotonic time source (injectable for tests).
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 5, *,
                 reset_after: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_after < 0:
            raise ValueError("reset_after must be >= 0")
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._consecutive = 0
        self._opened_at: float | None = None
        self._open_for = 0.0
        self._probing = False
        #: Lifetime counters, surfaced by client stats.
        self.trips = 0
        self.fast_failures = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._probing:
            return self.HALF_OPEN
        if self._clock() - self._opened_at >= self._open_for:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """Whether a request may be attempted right now.

        In the half-open state exactly one caller gets ``True`` (the
        probe); everyone else fails fast until it reports back.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        self.fast_failures += 1
        return False

    def check(self) -> None:
        """:meth:`allow`, raising :class:`CircuitOpenError` when denied."""
        if not self.allow():
            remaining = 0.0
            if self._opened_at is not None:
                remaining = max(0.0, self._open_for
                                - (self._clock() - self._opened_at))
            raise CircuitOpenError(
                f"circuit breaker is {self.state}; retry in "
                f"{remaining:.3f}s", retry_after=remaining)

    def record_success(self) -> None:
        self._consecutive = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self, *, retry_after: float | None = None) -> None:
        """Record one failed request (or a failed half-open probe)."""
        self._consecutive += 1
        if self._probing or self._consecutive >= self.failure_threshold:
            self._opened_at = self._clock()
            self._open_for = max(self.reset_after, retry_after or 0.0)
            self._probing = False
            self.trips += 1
