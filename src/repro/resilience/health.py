"""The server health-state machine: degrade, don't die.

A long-lived placement server has failure modes that are *partial*: the
WAL's disk can stop accepting writes while the route table — the thing
``lookup`` traffic needs — is perfectly intact in memory.  Crashing on
the first failed fsync throws away every read the server could still
answer; the resilient move is to stop *promising* durability (reject
mutations with a typed error) while the read path keeps serving.

:class:`HealthMonitor` is that machine::

    healthy ──────────▶ degraded ─────────▶ read_only ───▶ draining
      ▲   snapshot failed  │   WAL failed /     │   shutdown
      │                    │   snapshot limit   │
      └────── recovered ◀──┴────────────────────┘

* ``healthy`` — everything allowed.
* ``degraded`` — mutations still allowed, but a durability mechanism
  is misbehaving (a snapshot failed; shedding is sustained).  The
  state is a warning with teeth: operators see it in ``health``, and
  repeated snapshot failures escalate.
* ``read_only`` — mutations are rejected (``read_only`` error code);
  lookups, stats, health, and hello keep working.  Entered on a WAL
  append failure (an ack could no longer be made durable) or when
  snapshot failures pass their limit.
* ``draining`` — terminal; graceful shutdown in progress.

Transitions are validated (``draining`` is absorbing, self-transitions
are no-ops), recorded in a bounded history, counted, and optionally
emitted as ``health_transition`` trace records through the caller's
callback — the chaos-schedule harness replays fault scripts and asserts
the *transition trace* is identical across runs.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable

__all__ = ["DEGRADED", "DRAINING", "HEALTHY", "HEALTH_STATES",
           "HealthMonitor", "READ_ONLY"]

HEALTHY = "healthy"
DEGRADED = "degraded"
READ_ONLY = "read_only"
DRAINING = "draining"

HEALTH_STATES = (HEALTHY, DEGRADED, READ_ONLY, DRAINING)

_ALLOWED: dict[str, frozenset[str]] = {
    HEALTHY: frozenset({DEGRADED, READ_ONLY, DRAINING}),
    DEGRADED: frozenset({HEALTHY, READ_ONLY, DRAINING}),
    READ_ONLY: frozenset({HEALTHY, DEGRADED, DRAINING}),
    DRAINING: frozenset(),  # terminal
}


class HealthMonitor:
    """Thread-safe holder of one server's health state.

    Parameters
    ----------
    on_transition:
        Optional callback invoked *after* each accepted transition with
        the transition record (``{"from_state", "to_state", "reason"}``
        plus whatever ``transition(extra=...)`` adds).  Exceptions from
        the callback are swallowed — health accounting must never take
        down the component it describes.
    history_keep:
        Bounded transition history length (surfaced by ``health``).
    """

    def __init__(self, *, on_transition: Callable[[dict[str, Any]], None]
                 | None = None, history_keep: int = 64) -> None:
        self._lock = threading.Lock()
        self._state = HEALTHY
        self._on_transition = on_transition
        self.history: deque[dict[str, Any]] = deque(maxlen=history_keep)
        self.transitions = 0

    @property
    def state(self) -> str:
        return self._state

    @property
    def allows_mutation(self) -> bool:
        """Whether ``place``/``snapshot`` traffic may be admitted."""
        return self._state in (HEALTHY, DEGRADED)

    def transition(self, to_state: str, reason: str,
                   **extra: Any) -> bool:
        """Move to ``to_state``; returns whether the state changed.

        A self-transition is a silent no-op; a transition out of the
        terminal ``draining`` state is refused (``False``) — shutdown
        cannot be argued with.  An unknown target raises ``ValueError``
        (that is a programming error, not a runtime condition).
        """
        if to_state not in _ALLOWED:
            raise ValueError(f"unknown health state {to_state!r}; "
                             f"known: {list(_ALLOWED)}")
        with self._lock:
            if to_state == self._state:
                return False
            if to_state not in _ALLOWED[self._state]:
                return False
            record: dict[str, Any] = {
                "from_state": self._state,
                "to_state": to_state,
                "reason": reason,
            }
            record.update(extra)
            self._state = to_state
            self.transitions += 1
            self.history.append(record)
        if self._on_transition is not None:
            try:
                self._on_transition(dict(record))
            except Exception:
                pass
        return True

    def snapshot(self) -> dict[str, Any]:
        """The ``health`` endpoint's view: state + bounded history."""
        with self._lock:
            return {
                "health_state": self._state,
                "transitions": self.transitions,
                "history": [dict(r) for r in self.history],
            }
