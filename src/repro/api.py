"""Top-level facade: the stable three-call API for notebooks and scripts.

Everything a typical user needs lives behind three names, re-exported at
package top level so deep module paths never leak into user code::

    from repro import make_partitioner, partition_stream, evaluate

    result = partition_stream(graph, method="spnl", num_partitions=32,
                              slack=1.1)
    print(evaluate(graph, result.assignment))

Stable signatures (the documented contract; deep module paths keep
working but these are what notebooks should use):

``make_partitioner(name, num_partitions, **kwargs)``
    Build any registered partitioner by short name; see
    :mod:`repro.partitioning.registry`.

``partition_stream(graph, method="spnl", num_partitions=32, *,
order=None, threads=1, instrumentation=None, **kwargs)``
    One-call partitioning of a :class:`~repro.graph.digraph.DiGraph`
    (or an existing :class:`~repro.graph.stream.VertexStream`), returning
    a :class:`~repro.partitioning.base.StreamingResult` whatever the
    method — streaming heuristics consume a stream, offline baselines the
    graph; the difference is handled here.

``evaluate(graph, assignment)``
    The paper's full quality metric set
    (:func:`repro.partitioning.metrics.evaluate`).
"""

from __future__ import annotations

from typing import Any

from .graph.digraph import DiGraph
from .graph.stream import GraphStream, VertexStream
from .partitioning.base import StreamingResult
from .partitioning.metrics import evaluate
from .partitioning.registry import (
    available_partitioners,
    make_partitioner,
    resolve,
)

__all__ = ["available_partitioners", "evaluate", "make_partitioner",
           "partition_stream"]


def partition_stream(graph: DiGraph | VertexStream,
                     method: str = "spnl",
                     num_partitions: int = 32, *,
                     order: Any = None,
                     threads: int = 1,
                     instrumentation: Any = None,
                     **kwargs: Any) -> StreamingResult:
    """Partition ``graph`` with the named method, end to end.

    Parameters
    ----------
    graph:
        A :class:`DiGraph` (wrapped in a fresh id-ordered
        :class:`GraphStream`) or an existing stream.  Offline methods
        (``"metis"``, ``"xtrapulp"``) require a ``DiGraph`` (or a
        ``GraphStream`` exposing ``.graph``) and return an
        :class:`~repro.offline.multilevel.OfflineResult`, which carries
        the same ``assignment``/``elapsed_seconds``/``stats`` fields.
    method:
        A registered partitioner name (``repro.available_partitioners()``
        lists them); unknown names raise with that list.
    num_partitions:
        ``K``.
    order:
        Optional arrival order forwarded to :class:`GraphStream` when a
        ``DiGraph`` is given.
    threads:
        ``> 1`` wraps a streaming method in the shared-memory
        :class:`~repro.parallel.executor.ThreadedParallelPartitioner`.
    instrumentation:
        Optional :class:`~repro.observability.Instrumentation` hub; when
        given, the pass emits windowed trace records (see
        ``docs/observability.md``).  ``None`` keeps the bit-exact
        uninstrumented path.
    **kwargs:
        Heuristic parameters (``slack``, ``lam``, ``num_shards``, …)
        forwarded to the constructor; unknown ones are dropped so the
        same call shape works across methods.
    """
    entry = resolve(method)
    partitioner = make_partitioner(method, num_partitions,
                                   ignore_unknown=True, **kwargs)
    if not entry.is_streaming:
        target = graph.graph if isinstance(graph, GraphStream) else graph
        if not isinstance(target, DiGraph):
            raise TypeError(
                f"offline method {method!r} needs a DiGraph, got "
                f"{type(graph).__name__}")
        if instrumentation is not None:
            with instrumentation.timer(f"partition.{method}"):
                return partitioner.partition(target)
        return partitioner.partition(target)
    if threads > 1:
        from .parallel.executor import ThreadedParallelPartitioner
        partitioner = ThreadedParallelPartitioner(partitioner,
                                                  parallelism=threads)
    stream = graph if not isinstance(graph, DiGraph) \
        else GraphStream(graph, order=order)
    if instrumentation is None:
        return partitioner.partition(stream)
    return partitioner.partition(stream, instrumentation=instrumentation)
