"""Top-level facade: the stable three-call API for notebooks and scripts.

Everything a typical user needs lives behind three names, re-exported at
package top level so deep module paths never leak into user code::

    from repro import make_partitioner, partition_stream, evaluate

    result = partition_stream(graph, method="spnl", num_partitions=32,
                              slack=1.1)
    print(evaluate(graph, result.assignment))

Stable signatures (the documented contract; deep module paths keep
working but these are what notebooks should use):

``make_partitioner(name, num_partitions, **kwargs)``
    Build any registered partitioner by short name; see
    :mod:`repro.partitioning.registry`.

``partition_stream(graph, method="spnl", num_partitions=32, *,
order=None, threads=1, instrumentation=None, **kwargs)``
    One-call partitioning of a :class:`~repro.graph.digraph.DiGraph`
    (or an existing :class:`~repro.graph.stream.VertexStream`), returning
    a :class:`~repro.partitioning.base.StreamingResult` whatever the
    method — streaming heuristics consume a stream, offline baselines the
    graph; the difference is handled here.

``evaluate(graph, assignment)``
    The paper's full quality metric set
    (:func:`repro.partitioning.metrics.evaluate`).
"""

from __future__ import annotations

from typing import Any

from .graph.digraph import DiGraph
from .graph.stream import GraphStream, VertexStream
from .partitioning.base import StreamingResult
from .partitioning.config import PartitionConfig, warn_kwargs_style_once
from .partitioning.metrics import evaluate
from .partitioning.registry import (
    available_partitioners,
    make_partitioner,
    resolve,
)

__all__ = ["available_partitioners", "connect", "evaluate",
           "make_partitioner", "partition_stream", "serve"]


def partition_stream(graph: DiGraph | VertexStream,
                     method: str | PartitionConfig = "spnl",
                     num_partitions: int = 32, *,
                     order: Any = None,
                     threads: int = 1,
                     instrumentation: Any = None,
                     config: PartitionConfig | None = None,
                     **kwargs: Any) -> StreamingResult:
    """Partition ``graph`` with the named method, end to end.

    Parameters
    ----------
    graph:
        A :class:`DiGraph` (wrapped in a fresh id-ordered
        :class:`GraphStream`) or an existing stream.  Offline methods
        (``"metis"``, ``"xtrapulp"``) require a ``DiGraph`` (or a
        ``GraphStream`` exposing ``.graph``) and return an
        :class:`~repro.offline.multilevel.OfflineResult`, which carries
        the same ``assignment``/``elapsed_seconds``/``stats`` fields.
    method:
        A registered partitioner name (``repro.available_partitioners()``
        lists them); unknown names raise with that list.  A
        :class:`~repro.partitioning.config.PartitionConfig` may be
        passed here directly (``partition_stream(graph, cfg)``) and
        supplies the name, ``K``, and every tuning knob.
    num_partitions:
        ``K``.
    order:
        Optional arrival order forwarded to :class:`GraphStream` when a
        ``DiGraph`` is given.
    threads:
        ``> 1`` wraps a streaming method in the shared-memory
        :class:`~repro.parallel.executor.ThreadedParallelPartitioner`.
    instrumentation:
        Optional :class:`~repro.observability.Instrumentation` hub; when
        given, the pass emits windowed trace records (see
        ``docs/observability.md``).  ``None`` keeps the bit-exact
        uninstrumented path.
    config:
        A :class:`PartitionConfig` naming the method and its knobs —
        the preferred way to specify a run.  Mutually exclusive with
        loose ``**kwargs``.
    **kwargs:
        Heuristic parameters (``slack``, ``lam``, ``num_shards``, …)
        forwarded to the constructor; unknown ones are dropped so the
        same call shape works across methods.  Deprecated in favour of
        ``config`` (one :class:`DeprecationWarning` per process).
    """
    if isinstance(method, PartitionConfig):
        if config is not None:
            raise TypeError("pass the PartitionConfig as method= or "
                            "config=, not both")
        config = method
    if config is not None:
        if kwargs:
            raise TypeError(
                "config= and loose heuristic kwargs are mutually "
                "exclusive; fold the kwargs into the PartitionConfig")
        method = config.method
        num_partitions = config.num_partitions
        kwargs = config.kwargs()
    elif kwargs:
        warn_kwargs_style_once()
    entry = resolve(method)
    partitioner = make_partitioner(method, num_partitions,
                                   ignore_unknown=True, **kwargs)
    if not entry.is_streaming:
        target = graph.graph if isinstance(graph, GraphStream) else graph
        if not isinstance(target, DiGraph):
            raise TypeError(
                f"offline method {method!r} needs a DiGraph, got "
                f"{type(graph).__name__}")
        if instrumentation is not None:
            with instrumentation.timer(f"partition.{method}"):
                return partitioner.partition(target)
        return partitioner.partition(target)
    if threads > 1:
        from .parallel.executor import ThreadedParallelPartitioner
        partitioner = ThreadedParallelPartitioner(partitioner,
                                                  parallelism=threads)
    stream = graph if not isinstance(graph, DiGraph) \
        else GraphStream(graph, order=order)
    if instrumentation is None:
        return partitioner.partition(stream)
    return partitioner.partition(stream, instrumentation=instrumentation)


def serve(graph: Any, config: PartitionConfig | None = None, *,
          host: str = "127.0.0.1", port: int = 0,
          snapshot_dir: Any = None, resume_from: Any = None,
          **kwargs: Any) -> Any:
    """Boot a live placement server over ``graph``; returns it started.

    The online twin of :func:`partition_stream`: instead of one batch
    pass, a long-lived :class:`~repro.service.PlacementService` holds the
    partitioner state and answers ``place``/``lookup``/``stats`` over the
    versioned wire protocol (``protocol: 1`` — see ``docs/service.md``).

    ``graph`` is a :class:`DiGraph` or a path to a graph file (loaded
    through the binary CSR cache when a sidecar exists).  The returned
    service is already listening — read ``service.address`` for the
    bound ``(host, port)`` and call ``service.close()`` (or use it as a
    context manager) to drain and stop.  Remaining ``kwargs`` go to
    :class:`~repro.service.PlacementService`.
    """
    from .service import PlacementService
    return PlacementService.start(
        graph, config=config, host=host, port=port,
        snapshot_dir=snapshot_dir, resume_from=resume_from, **kwargs)


def connect(host: str = "127.0.0.1", port: int = 0,
            **kwargs: Any) -> Any:
    """Open a :class:`~repro.service.ServiceClient` to a running server.

    Performs the ``hello`` protocol handshake on connect (raising
    :class:`~repro.service.ServiceError` on a version mismatch) and
    returns the ready client.  ``connect(service)`` also works — any
    object with an ``address`` attribute is dereferenced, so
    ``repro.connect(repro.serve(graph))`` composes.
    """
    from .service import ServiceClient
    address = getattr(host, "address", None)
    if address is not None:
        host, port = address
    return ServiceClient(host, port, **kwargs)
