"""Communication accounting for the BSP runtime.

The whole point of reducing ECR (paper Sec. I) is that cut edges turn
intra-worker memory writes into network messages in systems like Pregel.
:class:`CommReport` tallies exactly that: per superstep, how many messages
stayed local to a partition and how many crossed partitions, plus a simple
makespan model so examples can translate a partitioning into an estimated
distributed job time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SuperstepStats", "CommReport"]


@dataclass(frozen=True)
class SuperstepStats:
    """Message tallies for one superstep."""

    superstep: int
    local_messages: int
    remote_messages: int
    active_vertices: int

    @property
    def total_messages(self) -> int:
        return self.local_messages + self.remote_messages


@dataclass
class CommReport:
    """Aggregated communication profile of one BSP run.

    The makespan model charges each superstep the slowest partition's
    compute (``compute_cost_per_message`` × its received messages) plus
    the network time for every remote message
    (``network_cost_per_message``) — the standard α-β-style model with
    β-only messaging, enough to rank partitionings.
    """

    num_partitions: int
    supersteps: list[SuperstepStats] = field(default_factory=list)
    received_per_partition: np.ndarray | None = None
    #: per-superstep per-partition tallies for the cluster simulator:
    #: ``superstep -> (received, remote_in, remote_out)`` length-K arrays
    per_partition_traffic: dict = field(default_factory=dict)

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def local_messages(self) -> int:
        return sum(s.local_messages for s in self.supersteps)

    @property
    def remote_messages(self) -> int:
        return sum(s.remote_messages for s in self.supersteps)

    @property
    def total_messages(self) -> int:
        return self.local_messages + self.remote_messages

    @property
    def remote_fraction(self) -> float:
        """Fraction of all messages that crossed partitions.

        For a single-superstep broadcast over every edge this equals the
        partitioning's ECR exactly (a property test pins this identity).
        """
        total = self.total_messages
        return self.remote_messages / total if total else 0.0

    def record(self, superstep: int, local: int, remote: int,
               active: int, *,
               received: np.ndarray | None = None,
               remote_in: np.ndarray | None = None,
               remote_out: np.ndarray | None = None) -> None:
        """Append one superstep's tallies.

        The optional per-partition arrays feed
        :func:`repro.runtime.cluster.simulate_job`'s imbalance model.
        """
        self.supersteps.append(SuperstepStats(
            superstep=superstep, local_messages=local,
            remote_messages=remote, active_vertices=active))
        if received is not None:
            self.per_partition_traffic[superstep] = (
                np.asarray(received, dtype=np.int64),
                np.asarray(remote_in if remote_in is not None
                           else np.zeros_like(received), dtype=np.int64),
                np.asarray(remote_out if remote_out is not None
                           else np.zeros_like(received), dtype=np.int64))

    def estimated_makespan(self, *,
                           compute_cost_per_message: float = 1.0,
                           network_cost_per_message: float = 20.0) -> float:
        """Model the distributed wall time of the run (arbitrary units).

        Defaults make a remote message 20× a local compute unit — the
        order of magnitude of RAM-vs-network on commodity clusters.
        """
        makespan = 0.0
        for stats in self.supersteps:
            per_part = stats.total_messages / max(1, self.num_partitions)
            makespan += (per_part * compute_cost_per_message
                         + stats.remote_messages
                         * network_cost_per_message
                         / max(1, self.num_partitions))
        return makespan

    def __str__(self) -> str:
        return (f"CommReport(supersteps={self.num_supersteps}, "
                f"local={self.local_messages}, "
                f"remote={self.remote_messages}, "
                f"remote_fraction={self.remote_fraction:.3f})")
