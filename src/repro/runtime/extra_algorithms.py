"""Additional vertex-centric workloads: personalized PageRank and HITS.

Beyond the three canonical jobs (PageRank/SSSP/WCC), these give the BSP
runtime two more realistic multi-tenant workloads — and HITS exercises a
pattern the others don't: alternating propagation along *forward* and
*reverse* edges within one algorithm, which stresses both directions of
the partitioning's cut.
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from ..partitioning.assignment import PartitionAssignment
from .comm import CommReport
from .engine import BSPEngine, BSPRun, VertexProgram

__all__ = ["PersonalizedPageRankProgram", "run_ppr", "run_hits"]


class PersonalizedPageRankProgram(VertexProgram):
    """Random walk with restart to a fixed source set.

    Identical propagation to PageRank, but the teleport mass returns to
    the ``sources`` instead of spreading uniformly — the standard
    similarity/recommendation primitive.
    """

    combiner = "sum"

    def __init__(self, sources: np.ndarray | list[int],
                 iterations: int = 20, damping: float = 0.85) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.sources = np.asarray(sources, dtype=np.int64)
        if len(self.sources) == 0:
            raise ValueError("sources must be non-empty")
        self.iterations = iterations
        self.damping = damping

    def _restart_vector(self, n: int) -> np.ndarray:
        restart = np.zeros(n)
        restart[self.sources] = 1.0 / len(self.sources)
        return restart

    def initial_values(self, graph: DiGraph) -> np.ndarray:
        return self._restart_vector(graph.num_vertices)

    def compute(self, superstep: int, graph: DiGraph, values: np.ndarray,
                incoming: np.ndarray | None):
        n = graph.num_vertices
        out_deg = graph.out_degrees()
        if superstep > 0:
            assert incoming is not None
            dangling = values[out_deg == 0].sum()
            restart = self._restart_vector(n)
            values = ((1.0 - self.damping) * restart
                      + self.damping * (incoming + dangling * restart))
        sends = (out_deg > 0) if superstep < self.iterations \
            else np.zeros(n, dtype=bool)
        payloads = np.divide(values, out_deg,
                             out=np.zeros_like(values),
                             where=out_deg > 0)
        return values, payloads, sends


def run_ppr(graph: DiGraph, assignment: PartitionAssignment,
            sources: list[int], *, iterations: int = 20,
            damping: float = 0.85) -> BSPRun:
    """Personalized PageRank; ``run.values`` sum to 1 over the walk."""
    engine = BSPEngine(graph, assignment)
    return engine.run(
        PersonalizedPageRankProgram(sources, iterations, damping),
        max_supersteps=iterations + 1)


def run_hits(graph: DiGraph, assignment: PartitionAssignment, *,
             iterations: int = 20) -> BSPRun:
    """HITS hubs & authorities via alternating BSP phases.

    Each iteration runs one authority phase (hub scores pushed along
    forward edges) and one hub phase (authority scores pushed along
    reverse edges), L2-normalizing after each.  Returns a
    :class:`BSPRun` whose ``values`` is a (|V|, 2) array of
    ``[hub, authority]`` scores and whose ``comm`` aggregates both
    directions' message traffic under the *same* partitioning.
    """
    n = graph.num_vertices
    forward = BSPEngine(graph, assignment)
    backward = BSPEngine(graph.reverse(), assignment)
    hubs = np.ones(n) / np.sqrt(max(1, n))
    authorities = np.ones(n) / np.sqrt(max(1, n))
    comm = CommReport(num_partitions=assignment.num_partitions)

    class _PushOnce(VertexProgram):
        combiner = "sum"

        def __init__(self, payload: np.ndarray) -> None:
            self.payload = payload
            self.collected: np.ndarray | None = None

        def initial_values(self, graph: DiGraph) -> np.ndarray:
            return np.zeros(graph.num_vertices)

        def compute(self, superstep, graph, values, incoming):
            if superstep == 0:
                sends = graph.out_degrees() > 0
                return values, self.payload, sends
            self.collected = incoming
            return incoming, np.zeros_like(values), np.zeros(
                graph.num_vertices, dtype=bool)

    step = 0
    for _ in range(iterations):
        # authority update: sum of hub scores over in-edges
        push = _PushOnce(hubs)
        run = forward.run(push, max_supersteps=2)
        authorities = run.values
        norm = np.linalg.norm(authorities)
        if norm > 0:
            authorities = authorities / norm
        for s in run.comm.supersteps:
            comm.record(step, s.local_messages, s.remote_messages,
                        s.active_vertices)
            step += 1
        # hub update: sum of authority scores over out-edges
        push = _PushOnce(authorities)
        run = backward.run(push, max_supersteps=2)
        hubs = run.values
        norm = np.linalg.norm(hubs)
        if norm > 0:
            hubs = hubs / norm
        for s in run.comm.supersteps:
            comm.record(step, s.local_messages, s.remote_messages,
                        s.active_vertices)
            step += 1

    return BSPRun(values=np.stack([hubs, authorities], axis=1),
                  comm=comm, supersteps=step, program="HITS")
