"""A vectorized Pregel-like BSP engine over a partitioned graph.

The paper motivates streaming partitioning with systems like Pregel, where
the partitioner is a built-in preprocessing step of every analysis job and
cut edges become network messages.  This engine closes that loop: given a
:class:`~repro.graph.digraph.DiGraph` and a
:class:`~repro.partitioning.assignment.PartitionAssignment`, it runs
vertex-centric programs superstep by superstep and reports the local/remote
message split — so examples and benchmarks can show SPNL's ECR advantage
turning into fewer remote messages and a shorter simulated makespan.

Vertex programs are *batch* formulations of the classic vertex-centric
API: instead of one ``compute()`` call per vertex, the engine hands the
program dense per-vertex arrays and the program answers with dense arrays
(values, message payloads, sender mask).  Semantics match Pregel's
broadcast-to-out-neighbors pattern with a commutative combiner.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..graph.digraph import DiGraph
from ..partitioning.assignment import PartitionAssignment
from .comm import CommReport

__all__ = ["VertexProgram", "BSPEngine", "BSPRun"]


class VertexProgram(ABC):
    """A batch vertex-centric program.

    ``combiner`` declares how concurrent messages to one vertex merge:
    ``"sum"`` (e.g. PageRank contributions) or ``"min"`` (e.g. shortest
    distances, component labels).
    """

    combiner: str = "sum"

    @abstractmethod
    def initial_values(self, graph: DiGraph) -> np.ndarray:
        """Per-vertex state before superstep 0."""

    @abstractmethod
    def compute(self, superstep: int, graph: DiGraph, values: np.ndarray,
                incoming: np.ndarray | None
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One superstep over all vertices at once.

        Parameters
        ----------
        superstep:
            0-based superstep index (``incoming`` is ``None`` at 0).
        values:
            Current per-vertex state.
        incoming:
            Combined messages per vertex from the previous superstep
            (identity element where nothing arrived).

        Returns
        -------
        ``(new_values, message_payloads, sends)``: the updated state, the
        payload each vertex *would* broadcast along its out-edges, and a
        boolean mask of vertices that actually send.  The run halts when
        no vertex sends.
        """


@dataclass
class BSPRun:
    """Result of :meth:`BSPEngine.run`."""

    values: np.ndarray
    comm: CommReport
    supersteps: int
    program: str

    def __str__(self) -> str:
        return (f"BSPRun(program={self.program}, "
                f"supersteps={self.supersteps}, {self.comm})")


class BSPEngine:
    """Runs :class:`VertexProgram` instances over a fixed partitioning."""

    def __init__(self, graph: DiGraph,
                 assignment: PartitionAssignment) -> None:
        assignment.validate(graph.num_vertices)
        self.graph = graph
        self.assignment = assignment
        # Precompute the edge arrays and the cut mask once; every
        # superstep reuses them.
        self._src, self._dst = graph.edge_array()
        route = assignment.route
        self._edge_is_remote = route[self._src] != route[self._dst]
        self._dst_partition = route[self._dst]
        self._src_partition = route[self._src]

    # ------------------------------------------------------------------
    def _combine(self, dst: np.ndarray, payloads: np.ndarray,
                 combiner: str, n: int) -> np.ndarray:
        if combiner == "sum":
            out = np.zeros(n, dtype=np.float64)
            np.add.at(out, dst, payloads)
            return out
        if combiner == "min":
            out = np.full(n, np.inf, dtype=np.float64)
            np.minimum.at(out, dst, payloads)
            return out
        raise ValueError(f"unknown combiner {combiner!r}")

    def run(self, program: VertexProgram, *,
            max_supersteps: int = 100, instrumentation=None) -> BSPRun:
        """Execute ``program`` to quiescence (or ``max_supersteps``).

        ``instrumentation`` (an
        :class:`~repro.observability.Instrumentation` hub) opts the run
        into per-superstep ``bsp_superstep`` trace records plus
        local/remote message counters — the observable version of the
        "cut edges become network messages" story this engine exists to
        tell.
        """
        graph = self.graph
        n = graph.num_vertices
        values = program.initial_values(graph)
        comm = CommReport(num_partitions=self.assignment.num_partitions)
        incoming: np.ndarray | None = None
        received = np.zeros(self.assignment.num_partitions, dtype=np.int64)
        program_name = type(program).__name__
        run_start = time.perf_counter()
        step_started = run_start

        for superstep in range(max_supersteps):
            values, payloads, sends = program.compute(
                superstep, graph, values, incoming)
            if not sends.any():
                break
            edge_sel = sends[self._src]
            active = int(sends.sum())
            remote_edges = edge_sel & self._edge_is_remote
            remote = int(np.sum(remote_edges))
            local = int(edge_sel.sum()) - remote
            k = self.assignment.num_partitions
            received_now = np.bincount(self._dst_partition[edge_sel],
                                       minlength=k)
            comm.record(
                superstep, local, remote, active,
                received=received_now,
                remote_in=np.bincount(self._dst_partition[remote_edges],
                                      minlength=k),
                remote_out=np.bincount(self._src_partition[remote_edges],
                                       minlength=k))
            received += received_now
            incoming = self._combine(
                self._dst[edge_sel], payloads[self._src[edge_sel]],
                program.combiner, n)
            if instrumentation is not None:
                now = time.perf_counter()
                instrumentation.emit({
                    "type": "bsp_superstep",
                    "superstep": superstep,
                    "active_vertices": active,
                    "local_messages": local,
                    "remote_messages": remote,
                    "elapsed_seconds": now - step_started,
                    "program": program_name,
                })
                step_started = now
                instrumentation.count("bsp.local_messages", local)
                instrumentation.count("bsp.remote_messages", remote)
        comm.received_per_partition = received
        if instrumentation is not None:
            instrumentation.count("bsp.supersteps", comm.num_supersteps)
            instrumentation.gauge("bsp.elapsed_seconds",
                                  time.perf_counter() - run_start)
        return BSPRun(values=values, comm=comm,
                      supersteps=comm.num_supersteps,
                      program=type(program).__name__)
