"""Vertex-centric programs: PageRank, SSSP, and connected components.

These are the canonical Pregel workloads the paper's introduction names
("like running PageRank and Shortest Path computations in two jobs but on
the same graph").  Each is a batch :class:`~repro.runtime.engine
.VertexProgram`; convenience ``run_*`` wrappers build the engine and
return both the algorithmic answer and the communication report.
"""

from __future__ import annotations

import numpy as np

from ..graph.digraph import DiGraph
from ..partitioning.assignment import PartitionAssignment
from .engine import BSPEngine, BSPRun, VertexProgram

__all__ = [
    "PageRankProgram", "SSSPProgram", "ConnectedComponentsProgram",
    "run_pagerank", "run_sssp", "run_wcc",
]


class PageRankProgram(VertexProgram):
    """Power-iteration PageRank with a fixed superstep budget.

    Dangling mass is redistributed uniformly each superstep so ranks stay
    a probability distribution (sums to 1).
    """

    combiner = "sum"

    def __init__(self, iterations: int = 20, damping: float = 0.85) -> None:
        if not 0.0 < damping < 1.0:
            raise ValueError("damping must be in (0, 1)")
        self.iterations = iterations
        self.damping = damping

    def initial_values(self, graph: DiGraph) -> np.ndarray:
        n = max(1, graph.num_vertices)
        return np.full(graph.num_vertices, 1.0 / n)

    def compute(self, superstep: int, graph: DiGraph, values: np.ndarray,
                incoming: np.ndarray | None):
        n = max(1, graph.num_vertices)
        out_deg = graph.out_degrees()
        if superstep > 0:
            assert incoming is not None
            dangling = values[out_deg == 0].sum()
            values = ((1.0 - self.damping) / n
                      + self.damping * (incoming + dangling / n))
        sends = np.zeros(graph.num_vertices, dtype=bool)
        if superstep < self.iterations:
            sends = out_deg > 0
        payloads = np.divide(values, out_deg,
                             out=np.zeros_like(values),
                             where=out_deg > 0)
        return values, payloads, sends


class SSSPProgram(VertexProgram):
    """Single-source shortest paths on unit-weight directed edges."""

    combiner = "min"

    def __init__(self, source: int) -> None:
        self.source = source

    def initial_values(self, graph: DiGraph) -> np.ndarray:
        values = np.full(graph.num_vertices, np.inf)
        values[self.source] = 0.0
        return values

    def compute(self, superstep: int, graph: DiGraph, values: np.ndarray,
                incoming: np.ndarray | None):
        if superstep == 0:
            improved = np.zeros(graph.num_vertices, dtype=bool)
            improved[self.source] = True
        else:
            assert incoming is not None
            improved = incoming < values
            values = np.minimum(values, incoming)
        sends = improved & (graph.out_degrees() > 0)
        payloads = values + 1.0
        return values, payloads, sends


class ConnectedComponentsProgram(VertexProgram):
    """Weakly connected components by min-label propagation.

    WCC is defined on the undirected structure; run it through
    :func:`run_wcc`, which symmetrizes the graph first (messages on the
    original graph's partitioning would miss reverse edges).
    """

    combiner = "min"

    def initial_values(self, graph: DiGraph) -> np.ndarray:
        return np.arange(graph.num_vertices, dtype=np.float64)

    def compute(self, superstep: int, graph: DiGraph, values: np.ndarray,
                incoming: np.ndarray | None):
        if superstep == 0:
            changed = np.ones(graph.num_vertices, dtype=bool)
        else:
            assert incoming is not None
            changed = incoming < values
            values = np.minimum(values, incoming)
        sends = changed & (graph.out_degrees() > 0)
        return values, values, sends


# ----------------------------------------------------------------------
# Convenience wrappers
# ----------------------------------------------------------------------
def run_pagerank(graph: DiGraph, assignment: PartitionAssignment, *,
                 iterations: int = 20, damping: float = 0.85) -> BSPRun:
    """PageRank over a partitioned graph; ``run.values`` are the ranks."""
    engine = BSPEngine(graph, assignment)
    return engine.run(PageRankProgram(iterations, damping),
                      max_supersteps=iterations + 1)


def run_sssp(graph: DiGraph, assignment: PartitionAssignment,
             source: int, *, max_supersteps: int = 10_000) -> BSPRun:
    """Unit-weight SSSP; unreachable vertices keep distance ``inf``."""
    engine = BSPEngine(graph, assignment)
    return engine.run(SSSPProgram(source), max_supersteps=max_supersteps)


def run_wcc(graph: DiGraph, assignment: PartitionAssignment, *,
            max_supersteps: int = 10_000) -> BSPRun:
    """Weakly connected components (labels = min vertex id per component).

    Symmetrizes the graph internally; the assignment still describes the
    original vertices, so message locality reflects the same partitioning.
    """
    undirected = graph.to_undirected_csr()
    engine = BSPEngine(undirected, assignment)
    return engine.run(ConnectedComponentsProgram(),
                      max_supersteps=max_supersteps)
