"""Pregel-like BSP runtime: shows what a partitioning costs downstream."""

from .algorithms import (
    ConnectedComponentsProgram,
    PageRankProgram,
    SSSPProgram,
    run_pagerank,
    run_sssp,
    run_wcc,
)
from .cluster import (
    ClusterModel,
    JobCostReport,
    SuperstepCost,
    simulate_job,
)
from .comm import CommReport, SuperstepStats
from .extra_algorithms import (
    PersonalizedPageRankProgram,
    run_hits,
    run_ppr,
)
from .engine import BSPEngine, BSPRun, VertexProgram

__all__ = [
    "BSPEngine",
    "BSPRun",
    "ClusterModel",
    "CommReport",
    "JobCostReport",
    "ConnectedComponentsProgram",
    "PageRankProgram",
    "PersonalizedPageRankProgram",
    "SSSPProgram",
    "SuperstepCost",
    "SuperstepStats",
    "simulate_job",
    "VertexProgram",
    "run_hits",
    "run_pagerank",
    "run_ppr",
    "run_sssp",
    "run_wcc",
]
