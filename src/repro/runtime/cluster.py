"""Distributed-cluster cost model for BSP jobs.

:meth:`CommReport.estimated_makespan` ranks partitionings with a single
constant; this module is the full substrate: an explicit α-β cluster
model (per-worker compute rate, per-link bandwidth, per-superstep
barrier latency, optional stragglers) applied to the *per-superstep,
per-partition* message tallies the engine records.  It decomposes a
job's wall time into compute / communication / imbalance-wait, which is
what lets the benchmarks say not just "SPNL sends fewer messages" but
"and here is the cluster-time that buys".

One worker hosts one partition (the Pregel deployment the paper
targets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .comm import CommReport

__all__ = ["ClusterModel", "SuperstepCost", "JobCostReport",
           "simulate_job"]


@dataclass(frozen=True)
class ClusterModel:
    """Machine parameters of the simulated cluster.

    Defaults model a commodity 1 GbE cluster processing small messages:
    in-memory message handling ~10 M msg/s per worker, the wire ~1 M
    msg/s per worker link, 1 ms barrier per superstep.
    """

    compute_rate: float = 10e6        # messages processed /s /worker
    network_rate: float = 1e6         # remote messages /s /worker link
    barrier_latency: float = 1e-3     # seconds per superstep barrier
    straggler_factor: float = 1.0     # slowest worker's slowdown (>= 1)

    def __post_init__(self) -> None:
        if self.compute_rate <= 0 or self.network_rate <= 0:
            raise ValueError("rates must be positive")
        if self.barrier_latency < 0:
            raise ValueError("barrier_latency must be non-negative")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")


@dataclass(frozen=True)
class SuperstepCost:
    """Time decomposition of one superstep."""

    superstep: int
    compute_seconds: float
    network_seconds: float
    wait_seconds: float  # idle time of the average worker behind the max

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.network_seconds


@dataclass
class JobCostReport:
    """Cluster-time decomposition of a whole BSP job."""

    model: ClusterModel
    num_partitions: int
    supersteps: list[SuperstepCost] = field(default_factory=list)
    barrier_seconds: float = 0.0

    @property
    def compute_seconds(self) -> float:
        return sum(s.compute_seconds for s in self.supersteps)

    @property
    def network_seconds(self) -> float:
        return sum(s.network_seconds for s in self.supersteps)

    @property
    def wait_seconds(self) -> float:
        return sum(s.wait_seconds for s in self.supersteps)

    @property
    def makespan_seconds(self) -> float:
        """Critical-path wall time of the job."""
        return (self.compute_seconds + self.network_seconds
                + self.barrier_seconds)

    @property
    def utilization(self) -> float:
        """Mean-worker busy fraction (1 - waiting/straggling share)."""
        busy = self.compute_seconds + self.network_seconds
        if busy + self.wait_seconds == 0:
            return 1.0
        return busy / (busy + self.wait_seconds)

    def as_row(self) -> dict:
        return {
            "makespan(s)": round(self.makespan_seconds, 4),
            "compute(s)": round(self.compute_seconds, 4),
            "network(s)": round(self.network_seconds, 4),
            "wait(s)": round(self.wait_seconds, 4),
            "utilization": round(self.utilization, 3),
        }


def simulate_job(comm: CommReport,
                 model: ClusterModel | None = None) -> JobCostReport:
    """Apply a cluster model to a job's communication report.

    Uses per-superstep per-partition tallies when the report carries
    them (runs produced by :class:`repro.runtime.engine.BSPEngine` do);
    otherwise falls back to an even-spread approximation of the
    aggregate counts, which yields zero wait time.
    """
    model = model or ClusterModel()
    k = max(1, comm.num_partitions)
    report = JobCostReport(model=model, num_partitions=k)
    per_step = comm.per_partition_traffic
    for stats in comm.supersteps:
        traffic = per_step.get(stats.superstep) if per_step else None
        if traffic is not None:
            received, remote_in, remote_out = traffic
        else:
            received = np.full(k, stats.total_messages / k)
            half_remote = np.full(k, stats.remote_messages / k)
            remote_in, remote_out = half_remote, half_remote
        compute_per_worker = received / model.compute_rate
        network_per_worker = (remote_in + remote_out) / model.network_rate
        per_worker = compute_per_worker + network_per_worker
        slowest = float(per_worker.max()) * model.straggler_factor
        mean = float(per_worker.mean())
        compute_share = float(compute_per_worker.max())
        report.supersteps.append(SuperstepCost(
            superstep=stats.superstep,
            compute_seconds=compute_share * model.straggler_factor,
            network_seconds=max(0.0, slowest
                                - compute_share * model.straggler_factor),
            wait_seconds=max(0.0, slowest - mean),
        ))
    report.barrier_seconds = model.barrier_latency * len(comm.supersteps)
    return report
