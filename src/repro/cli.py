"""Command-line interface: ``repro-partition`` / ``python -m repro``.

Subcommands
-----------
``generate``
    Build a synthetic graph (or a named benchmark stand-in) and write it
    as an adjacency-list file.
``partition``
    Stream a graph file through a chosen partitioner and write the
    vertex-assignment route table.
``evaluate``
    Score an existing route table against its graph (ECR, δ_v, δ_e).
``bench``
    Regenerate one of the paper's tables/figures on the stand-ins, run
    a microbench (optionally under ``--profile``), compare/promote
    artifacts, or ``export``/``dashboard`` the perf history.
``info``
    Print dataset statistics for a graph file or named stand-in.
``serve``
    Run the long-lived placement service (partition-as-a-service) in
    the foreground; SIGTERM/SIGINT drain gracefully.
``serve-bench``
    Load-test a freshly-booted service and write ``BENCH_service.json``
    for the compare/promote gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _load_graph(path_or_name: str, *, policy=None, cache=None):
    """Resolve a CLI graph argument: a file path or a stand-in name.

    ``cache`` mirrors ``--graph-cache``: ``None`` parses the text file
    every time, ``True`` reads/writes the sidecar ``.reprocsr`` cache,
    and a path string uses that cache file.
    """
    from .bench.datasets import DATASETS, load
    from .graph.io import read_adjacency, read_edge_list

    if path_or_name in DATASETS:
        return load(path_or_name)
    path = Path(path_or_name)
    if not path.exists():
        raise SystemExit(
            f"error: {path_or_name!r} is neither a file nor one of the "
            f"named datasets {sorted(DATASETS)}")
    first_data_line = ""
    import gzip
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt") as fh:
        for line in fh:
            if line.strip() and not line.lstrip().startswith(("#", "%")):
                first_data_line = line
                break
    # Adjacency rows have >= 1 column, edge lists exactly 2; rows of 2 are
    # ambiguous, so default to edge list only for .edges files.
    if path.suffixes[:1] in ([".edges"], [".el"]) \
            or len(first_data_line.split()) == 2:
        reader = read_edge_list
    else:
        reader = read_adjacency
    if cache is not None:
        from .ingest.cache import load_or_parse
        return load_or_parse(path, cache=cache, policy=policy,
                             reader=reader)
    return reader(path, policy=policy)


def _config_from_args(args: argparse.Namespace, *, method: str | None = None,
                      k: int | None = None):
    """Bundle the CLI's shared heuristic flags into a PartitionConfig.

    The flags default to ``None`` on subcommands that omit them, so the
    config only pins knobs the parser actually exposes — registry and
    constructor defaults stay in charge of the rest.
    """
    from .partitioning.config import PartitionConfig

    try:
        return PartitionConfig(
            method=method if method is not None else args.method,
            num_partitions=k if k is not None else args.k,
            slack=getattr(args, "slack", None),
            lam=getattr(args, "lam", None),
            num_shards=getattr(args, "shards", None),
            gamma_store=getattr(args, "gamma_store", None),
            gamma_buckets=getattr(args, "gamma_buckets", None))
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


def _make_partitioner(method: str, k: int, args: argparse.Namespace):
    """Build the chosen method through one :class:`PartitionConfig`.

    Every method shares the CLI's one flag namespace
    (``--slack/--lam/--shards``); the config's build path drops knobs a
    method doesn't take, so each factory binds only the parameters it
    understands.
    """
    try:
        return _config_from_args(args, method=method, k=k).make()
    except ValueError as exc:  # unknown name: exit with the full list
        raise SystemExit(f"error: {exc}")


def _make_instrumentation(args: argparse.Namespace):
    """Build the trace hub from ``--trace``/``--probe-every`` (or None).

    ``--trace out.jsonl`` writes the windowed JSONL trace;
    ``--probe-every N`` sets the window (and, given without ``--trace``,
    streams human-readable probe lines to stderr instead).
    """
    trace = getattr(args, "trace", None)
    probe_every = getattr(args, "probe_every", None)
    if trace is None and probe_every is None:
        return None
    if probe_every is not None and probe_every < 1:
        raise SystemExit("error: --probe-every must be >= 1")
    from .observability import Instrumentation, JsonlSink, ProgressSink

    sinks = []
    if trace is not None:
        sinks.append(JsonlSink(trace))
    else:
        sinks.append(ProgressSink())
    return Instrumentation(sinks,
                           probe_every=probe_every
                           if probe_every is not None else 1000)


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    from .bench.datasets import DATASETS
    from .graph.generators import community_web_graph
    from .graph.io import write_adjacency

    if args.dataset:
        spec = DATASETS[args.dataset]
        graph = spec.build()
    else:
        graph = community_web_graph(args.vertices,
                                    avg_degree=args.avg_degree,
                                    seed=args.seed)
    write_adjacency(graph, args.output)
    print(f"wrote {graph.name}: |V|={graph.num_vertices} "
          f"|E|={graph.num_edges} -> {args.output}")
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from .graph.stream import GraphStream
    from .parallel.executor import ThreadedParallelPartitioner
    from .partitioning.metrics import evaluate
    from .partitioning.registry import resolve

    policy = None
    if args.lenient:
        from .recovery.lenient import IngestionPolicy
        policy = IngestionPolicy(
            mode="lenient",
            quarantine=str(args.output) + ".quarantine",
            max_errors=args.error_budget)
    graph = _load_graph(args.graph, policy=policy,
                        cache=getattr(args, "graph_cache", None))
    if policy is not None:
        policy.close()
        if policy.errors_total:
            print(f"warning: quarantined {policy.errors_total} malformed "
                  f"records -> {args.output}.quarantine", file=sys.stderr)
    partitioner = _make_partitioner(args.method, args.k, args)
    is_offline = not resolve(args.method).is_streaming
    checkpointing = (args.checkpoint_every is not None
                     or args.resume_from is not None)
    if checkpointing and is_offline:
        raise SystemExit(
            f"error: {args.method} is offline; checkpoint/resume applies "
            "to streaming passes only")
    processes = getattr(args, "processes", 1)
    if processes > 1 and args.threads > 1:
        raise SystemExit(
            "error: --threads and --processes are mutually exclusive; "
            "pick one executor")
    if processes > 1 and is_offline:
        raise SystemExit(
            f"error: {args.method} is offline; --processes applies to "
            "streaming passes only")
    if checkpointing and args.threads > 1:
        raise SystemExit(
            "error: --checkpoint-every/--resume-from are incompatible "
            "with --threads (snapshots capture a single-writer pass)")
    if args.threads > 1 and not is_offline:
        partitioner = ThreadedParallelPartitioner(
            partitioner, parallelism=args.threads)
    elif processes > 1:
        # The sharded executor snapshots at drained group boundaries,
        # so (unlike --threads) checkpoint/resume stays available.
        from .parallel.process import ProcessShardedPartitioner
        try:
            partitioner = ProcessShardedPartitioner(
                partitioner, parallelism=processes)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}")
    instrumentation = _make_instrumentation(args)
    ckpt_dir = args.checkpoint_dir or str(args.output) + ".ckpt"

    def _run():
        if is_offline:
            if instrumentation is not None:
                print(f"note: {args.method} is offline; streaming trace "
                      "flags are ignored", file=sys.stderr)
            return partitioner.partition(graph)
        stream = GraphStream(graph)
        if checkpointing and processes > 1:
            every = args.checkpoint_every
            if args.resume_from is not None:
                return partitioner.resume_partition(
                    stream, args.resume_from, config=ckpt_dir,
                    every=every, instrumentation=instrumentation)
            return partitioner.partition_with_checkpoints(
                stream, ckpt_dir, every=every,
                instrumentation=instrumentation)
        if checkpointing:
            from .recovery.checkpoint import (
                partition_with_checkpoints,
                resume_partition,
            )
            every = args.checkpoint_every
            if args.resume_from is not None:
                return resume_partition(
                    partitioner, stream, args.resume_from,
                    config=ckpt_dir, every=every,
                    instrumentation=instrumentation)
            return partition_with_checkpoints(
                partitioner, stream, ckpt_dir, every=every,
                instrumentation=instrumentation)
        return partitioner.partition(stream,
                                     instrumentation=instrumentation)

    try:
        if instrumentation is not None and not is_offline:
            with instrumentation:
                result = _run()
        else:
            result = _run()
    except ValueError as exc:
        if processes > 1:
            # e.g. the heuristic declares no shared score lanes; the
            # sharded executor only finds out once the pass starts.
            raise SystemExit(f"error: {exc}")
        raise
    quality = evaluate(graph, result.assignment)
    from .partitioning.persistence import save_assignment
    save_assignment(result.assignment, args.output, graph=graph,
                    partitioner=result.partitioner)
    print(f"{result.partitioner}: {quality} PT={result.elapsed_seconds:.3f}s")
    print(f"route table -> {args.output}")
    if checkpointing:
        written = result.stats.get("checkpoints_written", 0)
        resumed = result.stats.get("resumed_from")
        if resumed:
            print(f"resumed from {resumed}")
        print(f"checkpoints ({written} written) -> {ckpt_dir}")
    if instrumentation is not None and not is_offline:
        for sink, exc in instrumentation.sink_errors:
            print(f"warning: trace sink {type(sink).__name__} failed: "
                  f"{exc}", file=sys.stderr)
        if args.trace is not None and not instrumentation.sink_errors:
            print(f"trace -> {args.trace}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from .partitioning.metrics import evaluate

    graph = _load_graph(args.graph)
    from .partitioning.persistence import load_assignment
    assignment, header = load_assignment(args.routes)
    if header.get("partitioner"):
        print(f"(saved by {header['partitioner']})")
    print(evaluate(graph, assignment))
    return 0


def _cmd_edgepartition(args: argparse.Namespace) -> int:
    from .edgepart import evaluate_edges

    graph = _load_graph(args.graph)
    try:
        partitioner = _config_from_args(args).make(kind="edge")
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    result = partitioner.partition(graph)
    report = evaluate_edges(graph, result.assignment)
    np.savetxt(args.output, result.assignment.edge_pids, fmt="%d")
    print(f"{result.partitioner}: {report} "
          f"PT={result.elapsed_seconds:.3f}s")
    print(f"edge assignment -> {args.output}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from .bench.report import format_table
    from .graph.stats import describe

    graph = _load_graph(args.graph,
                        cache=getattr(args, "graph_cache", None))
    print(format_table([describe(graph).as_row()], title=graph.name))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .bench.report import format_table
    from .partitioning.analysis import (
        boundary_profile,
        cut_distance_histogram,
        partition_connectivity,
    )
    from .partitioning.metrics import evaluate
    from .partitioning.persistence import load_assignment

    graph = _load_graph(args.graph)
    assignment, header = load_assignment(args.routes)
    print(evaluate(graph, assignment))
    if header.get("partitioner"):
        print(f"(saved by {header['partitioner']})")
    print()
    print(format_table(cut_distance_histogram(graph, assignment,
                                              bins=args.bins),
                       title="cut fraction by id-distance decile"))
    print()
    print(format_table(boundary_profile(graph, assignment),
                       title="boundary vertices per partition"))
    print()
    print(format_table(
        [c.as_row() for c in partition_connectivity(graph, assignment)],
        title="partition connectivity"))
    return 0


def _load_bench_artifact(path: str) -> dict:
    """Read a bench artifact file, unwrapping a baseline envelope."""
    import json

    from .bench.baseline import BASELINE_FORMAT, validate_baseline

    p = Path(path)
    if not p.is_file():
        raise SystemExit(f"error: no bench artifact at {path}")
    try:
        obj = json.loads(p.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")
    if isinstance(obj, dict) and obj.get("format") == BASELINE_FORMAT:
        from .bench.baseline import BaselineError
        try:
            validate_baseline(obj)
        except BaselineError as exc:
            raise SystemExit(f"error: {exc}")
        return obj["artifact"]
    return obj


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    """``bench compare``: statistical baseline-vs-candidate verdicts."""
    import json

    from .bench.baseline import BASELINE_FORMAT, BaselineError, \
        resolve_baseline
    from .bench.compare import CompareError, compare_artifacts
    from .bench.report import format_compare_report

    if args.candidate is None:
        raise SystemExit("error: bench compare requires --candidate")
    candidate = _load_bench_artifact(args.candidate)
    baseline_spec = args.baseline or args.baselines_dir
    try:
        baseline_obj, baseline_path, exact = resolve_baseline(
            baseline_spec, candidate)
    except BaselineError as exc:
        raise SystemExit(f"error: {exc}")
    if baseline_obj.get("format") == BASELINE_FORMAT:
        baseline_artifact = baseline_obj["artifact"]
    else:
        baseline_artifact = baseline_obj
    if not exact:
        base_cpus = (baseline_artifact.get("machine") or {}).get(
            "cpu_count")
        cand_cpus = (candidate.get("machine") or {}).get("cpu_count")
        if base_cpus is not None and cand_cpus is not None \
                and base_cpus != cand_cpus:
            print(f"warning: CROSS-AFFINITY FALLBACK — no baseline for "
                  f"this machine fingerprint; fell back to "
                  f"{baseline_path} recorded at cpu_count={base_cpus}, "
                  f"but this runner sees cpu_count={cand_cpus}. An "
                  "affinity-throttled runner resolves a different "
                  "baseline and the gate may pass vacuously.",
                  file=sys.stderr)
        else:
            print(f"warning: no baseline for this machine fingerprint; "
                  f"fell back to {baseline_path} (cross-host timings "
                  "compare loosely)", file=sys.stderr)

    instrumentation = None
    if args.trace is not None:
        from .observability import Instrumentation, JsonlSink
        instrumentation = Instrumentation([JsonlSink(args.trace)])
    try:
        result = compare_artifacts(
            baseline_artifact, candidate,
            noise_floor=args.noise_floor, min_effect=args.min_effect,
            confidence=args.confidence,
            baseline_path=str(baseline_path),
            candidate_path=str(args.candidate),
            instrumentation=instrumentation)
    except CompareError as exc:
        raise SystemExit(f"error: {exc}")
    finally:
        if instrumentation is not None:
            instrumentation.close()

    print(format_compare_report(result))
    if args.report is not None:
        from .recovery.atomic import atomic_write_text
        atomic_write_text(Path(args.report),
                          format_compare_report(result, markdown=True)
                          + "\n")
        print(f"report -> {args.report}")
    if args.json is not None:
        from .recovery.atomic import atomic_write_text
        atomic_write_text(Path(args.json),
                          json.dumps(result.to_dict(), indent=2) + "\n")
        print(f"verdict json -> {args.json}")
    if args.gate:
        code = result.gate_exit_code()
        if code:
            regressed = ", ".join(m.metric for m in result.regressions)
            print(f"gate: FAIL — regressed metrics: {regressed}",
                  file=sys.stderr)
        return code
    return 0


def _cmd_bench_promote(args: argparse.Namespace) -> int:
    """``bench promote``: bless a candidate artifact as the baseline."""
    from .bench.baseline import BaselineError, promote

    if args.candidate is None:
        raise SystemExit("error: bench promote requires --candidate")
    artifact = _load_bench_artifact(args.candidate)
    try:
        path = promote(artifact, args.baselines_dir)
    except BaselineError as exc:
        raise SystemExit(f"error: {exc}")
    machine = artifact.get("machine", {})
    commit = machine.get("commit") or "unknown-commit"
    if machine.get("dirty"):
        commit += "+dirty"
    print(f"promoted {args.candidate} ({artifact.get('benchmark')}, "
          f"{commit}) -> {path}")
    return 0


def _cmd_bench_export(args: argparse.Namespace) -> int:
    """``bench export``: artifacts + baselines -> tidy time series."""
    import json

    from .bench.export import export_history, rows_to_csv
    from .recovery.atomic import atomic_write_text

    history = export_history(
        args.artifacts if args.artifacts else None,
        args.baselines_dir,
        warn=lambda msg: print(f"warning: {msg}", file=sys.stderr))
    payload = json.dumps(history, indent=2) + "\n"
    out = args.out or "-"
    if out == "-":
        sys.stdout.write(payload)
    else:
        atomic_write_text(Path(out), payload)
        print(f"history -> {out} ({len(history['rows'])} rows, "
              f"{len(history['skipped'])} skipped)")
    if args.csv is not None:
        atomic_write_text(Path(args.csv), rows_to_csv(history["rows"]))
        print(f"csv -> {args.csv}")
    return 0


def _cmd_bench_dashboard(args: argparse.Namespace) -> int:
    """``bench dashboard``: render the history export as static HTML."""
    import json

    from .bench.dashboard import build_dashboard
    from .bench.export import HISTORY_FORMAT, export_history

    if args.history is not None:
        path = Path(args.history)
        if not path.is_file():
            raise SystemExit(f"error: no history export at {args.history}")
        try:
            history = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise SystemExit(
                f"error: {args.history} is not valid JSON: {exc}")
        if not isinstance(history, dict) \
                or history.get("format") != HISTORY_FORMAT:
            raise SystemExit(
                f"error: {args.history} is not a bench-history export "
                f"(expected format {HISTORY_FORMAT!r}; run "
                "'bench export' first)")
    else:
        history = export_history(
            args.artifacts if args.artifacts else None,
            args.baselines_dir,
            warn=lambda msg: print(f"warning: {msg}", file=sys.stderr))
    out = args.out or "dashboard.html"
    written = build_dashboard(history, out)
    series = {(r["bench"], r["metric"], r["fingerprint_key"])
              for r in history.get("rows", [])}
    print(f"dashboard -> {written} ({len(series)} series, "
          f"{len(history.get('rows', []))} rows, "
          f"{len(history.get('skipped', []))} skipped inputs)")
    return 0


def _simple_bench_targets(args: argparse.Namespace) -> dict:
    """String-returning thunks for the table/figure regenerations.

    Returning the rendered text (instead of printing inline) lets
    ``--profile`` wrap any of these targets as a single profiled stage.
    """
    from .bench import figures, report, tables

    def _multi(bundles) -> str:
        return "\n".join(report.format_table(fig.as_rows(), title=title)
                         for title, fig in bundles)

    return {
        "table2": lambda: report.format_table(
            tables.table2_datasets(), title="Table II — datasets"),
        "table3": lambda: report.format_table(
            [r.as_row() for r in tables.table3_streaming(args.k)],
            title="Table III — streaming"),
        "table4": lambda: report.format_table(
            tables.table4_memory(k=args.k), title="Table IV — memory"),
        "table5": lambda: report.format_table(
            [r.as_row() for r in tables.table5_offline(args.k)],
            title="Table V — offline"),
        "fig3": lambda: report.format_table(
            figures.fig3_lambda_sweep(k=args.k).as_rows(),
            title="Fig. 3 — λ sweep"),
        "fig7": lambda: _multi(
            (f"Fig. 7 — window sweep (K={k})", fig)
            for k, fig in figures.fig7_window_sweep(
                ks=(args.k,)).items()),
        "fig8": lambda: _multi(
            (f"Fig. 8 — {metric} vs K (uk2002)", fig)
            for metric, fig in figures.fig8_9_k_sweep_streaming(
                "uk2002").items()),
        "fig9": lambda: _multi(
            (f"Fig. 9 — {metric} vs K (indo2004)", fig)
            for metric, fig in figures.fig8_9_k_sweep_streaming(
                "indo2004").items()),
        "fig10": lambda: _multi(
            (f"Fig. 10 — {metric} vs K (indo2004)", fig)
            for metric, fig in figures.fig10_11_k_sweep_offline(
                "indo2004").items()),
        "fig11": lambda: _multi(
            (f"Fig. 11 — {metric} vs K (eu2015)", fig)
            for metric, fig in figures.fig10_11_k_sweep_offline(
                "eu2015").items()),
        "fig12": lambda: report.format_table(
            figures.fig12_thread_sweep(k=args.k).as_rows(),
            title="Fig. 12 — thread sweep"),
    }


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import report

    target = args.target
    if target == "compare":
        return _cmd_bench_compare(args)
    if target == "promote":
        return _cmd_bench_promote(args)
    if target == "export":
        return _cmd_bench_export(args)
    if target == "dashboard":
        return _cmd_bench_dashboard(args)

    out = args.bench_out
    if out == "BENCH_streaming.json":  # targeted defaults
        out = {"ingest": "BENCH_ingest.json",
               "parallel-scaling": "BENCH_parallel.json"}.get(target, out)

    instrumentation = None
    profiler = None
    if getattr(args, "profile", None):
        from .bench.profile import BenchProfiler, default_profile_dir
        if args.trace is not None:
            from .observability import Instrumentation, JsonlSink
            instrumentation = Instrumentation([JsonlSink(args.trace)])
        profile_dir = args.profile_dir
        if profile_dir is None:
            if target in ("streaming", "ingest", "parallel-scaling"):
                profile_dir = default_profile_dir(out)
            elif target == "all":
                profile_dir = Path(args.output) / "suite.profile"
            else:
                profile_dir = Path(f"BENCH_{target}.profile")
        profiler = BenchProfiler(args.profile, profile_dir, bench=target,
                                 instrumentation=instrumentation)

    try:
        if target == "all":
            from .bench.suite import run_full_suite
            run_full_suite(args.output, k=args.k, quick=args.quick,
                           profile=profiler)
        elif target == "streaming":
            from .bench.micro import run_streaming_microbench
            if args.quick:
                artifact = run_streaming_microbench(
                    n=4000, k=args.k, warmup=1, repeats=3,
                    out_path=out, profile=profiler)
            else:
                artifact = run_streaming_microbench(
                    k=args.k, out_path=out, profile=profiler)
            rows = [{
                "method": r["method"],
                "fast median (s)": f"{r['fast']['median_s']:.4f}",
                "seed median (s)": f"{r['seed']['median_s']:.4f}",
                "speedup": f"{r['speedup_median']:.2f}x",
                "identical": r["identical"],
            } for r in artifact["results"]]
            print(report.format_table(
                rows, title="Streaming hot path — fast vs seed"))
            print(f"artifact written to {out}")
        elif target == "ingest":
            from .bench.ingest import run_ingest_microbench
            if args.quick:
                artifact = run_ingest_microbench(
                    n=4000, k=args.k, warmup=0, repeats=2, out_path=out,
                    profile=profiler)
            else:
                artifact = run_ingest_microbench(k=args.k, out_path=out,
                                                 profile=profiler)
            rows = [{
                "stage": r["stage"],
                "baseline median (s)": f"{r['baseline']['median_s']:.4f}",
                "optimized median (s)":
                    f"{r['optimized']['median_s']:.4f}",
                "speedup": f"{r['speedup_median']:.2f}x",
                "identical": r["identical"],
            } for r in artifact["results"]]
            print(report.format_table(
                rows, title="Ingest pipeline — optimized vs baseline"))
            print(f"artifact written to {out}")
        elif target == "parallel-scaling":
            from .bench.parallel import run_parallel_scaling_bench
            if args.quick:
                artifact = run_parallel_scaling_bench(
                    n=4000, k=args.k, warmup=1, repeats=3, out_path=out,
                    profile=profiler)
            else:
                artifact = run_parallel_scaling_bench(
                    k=args.k, out_path=out, profile=profiler)
            rows = [{
                "method": r["method"],
                "sequential median (s)":
                    f"{r['sequential']['median_s']:.4f}",
                "parallel median (s)": f"{r['parallel']['median_s']:.4f}",
                "speedup": f"{r['speedup_median']:.2f}x",
                "ECR delta": f"{r['ecr_delta_pct']:+.2f}%",
                "identical": r["identical"],
            } for r in artifact["results"]]
            cfg = artifact["config"]
            print(report.format_table(
                rows, title=f"Parallel scaling — sequential vs "
                            f"{cfg['num_workers']}-worker sharded "
                            f"(M={cfg['parallelism']})"))
            if not cfg["scaling_expected"]:
                print(f"note: only {artifact['machine']['cpu_count']} "
                      f"usable CPU(s) for {cfg['num_workers']} "
                      "worker(s); no speedup expected on this host",
                      file=sys.stderr)
            print(f"artifact written to {out}")
        else:
            thunk = _simple_bench_targets(args).get(target)
            if thunk is None:
                raise SystemExit(f"unknown bench target {target!r}")
            # Table/figure regenerations have no per-stage harness, so
            # --profile wraps the whole target as one stage.
            if profiler is not None:
                print(profiler.profile_stage(target, thunk))
            else:
                print(thunk())
        if profiler is not None:
            profiler.finalize(
                echo=lambda line: print(line, file=sys.stderr))
    finally:
        if instrumentation is not None:
            instrumentation.close()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the placement service in the foreground.

    Prints a parseable ``listening on HOST:PORT`` line to stdout once
    the socket is bound (supervisors and the chaos tests key on it),
    then blocks until SIGTERM/SIGINT triggers a graceful drain.
    """
    import signal

    from .service import PlacementService

    graph = _load_graph(args.graph,
                        cache=getattr(args, "graph_cache", None))
    config = _config_from_args(args)
    instrumentation = _make_instrumentation(args)
    try:
        service = PlacementService.start(
            graph, config=config, host=args.host, port=args.port,
            snapshot_dir=args.snapshot_dir,
            resume_from=args.resume_from,
            snapshot_every=args.snapshot_every,
            snapshot_keep=args.snapshot_keep,
            wal_fsync=not args.no_fsync,
            queue_depth=args.queue_depth, batch_max=args.batch_max,
            shed_watermark=args.shed_watermark,
            max_lag_seconds=args.max_lag_seconds,
            recovery_probe_interval=args.recovery_probe_interval,
            parallelism=args.parallelism, processes=args.processes,
            wal_pipeline=not args.no_wal_pipeline,
            instrumentation=instrumentation)
    except (ValueError, OSError) as exc:
        raise SystemExit(f"error: {exc}")
    host, port = service.address
    print(f"listening on {host}:{port}", flush=True)
    durability = (f"snapshots -> {args.snapshot_dir}"
                  if args.snapshot_dir else "volatile (no --snapshot-dir)")
    print(f"serving {graph.name}: |V|={graph.num_vertices} "
          f"|E|={graph.num_edges} method={config.method} "
          f"K={config.num_partitions} [{durability}]",
          file=sys.stderr, flush=True)

    def _on_signal(signum: int, frame: object) -> None:
        service.request_shutdown()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        # Poll so signals keep getting delivered to the main thread.
        while not service.wait(0.5):
            pass
    finally:
        service.close()
        if instrumentation is not None:
            instrumentation.close()
    stats = service.stats()
    fast = stats["fast_path"]
    print(f"drained: {stats['placements']} placements "
          f"({fast['fused_placements']} fused), "
          f"{stats['groups_processed']} engine groups, "
          f"position {stats['position']}", file=sys.stderr)
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """``serve-bench``: load-generate against a fresh service."""
    from .bench.report import format_table
    from .service import run_service_bench

    graph = None
    if args.graph is not None:
        graph = _load_graph(args.graph,
                            cache=getattr(args, "graph_cache", None))
    config = _config_from_args(args)
    num_vertices = args.vertices
    repeats, warmup, lookups = args.repeats, args.warmup, args.lookups
    if args.quick:
        num_vertices = min(num_vertices, 4000)
        repeats, warmup, lookups = min(repeats, 2), min(warmup, 1), 200
    profiler = None
    if getattr(args, "profile", None):
        from .bench.profile import BenchProfiler, default_profile_dir
        bench_kind = ("service-bench-sharded" if args.processes > 1
                      else "service-bench")
        profiler = BenchProfiler(
            args.profile,
            args.profile_dir or default_profile_dir(args.bench_out),
            bench=bench_kind)
    try:
        artifact = run_service_bench(
            graph, num_vertices=num_vertices, seed=args.seed,
            config=config, clients=args.clients,
            batch_size=args.batch_size, window=args.window,
            lookups_per_client=lookups,
            repeats=repeats, warmup=warmup, target_rps=args.target_rps,
            durable=not args.volatile, queue_depth=args.queue_depth,
            batch_max=args.batch_max,
            processes=args.processes, parallelism=args.parallelism,
            overload=not args.no_overload,
            overload_queue_depth=args.overload_queue_depth,
            overload_throttle=args.overload_throttle,
            out_path=args.bench_out,
            verbose=True, profile=profiler)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    if profiler is not None:
        profiler.finalize(echo=lambda line: print(line, file=sys.stderr))
    rows = []
    for rec in artifact["results"]:
        row = {
            "endpoint": rec["endpoint"],
            "p50 (ms)": f"{rec['p50']['median_s'] * 1e3:.2f}",
            "p99 (ms)": f"{rec['p99']['median_s'] * 1e3:.2f}",
        }
        if "placements_per_s" in rec:
            row["placements/s"] = \
                f"{rec['placements_per_s']['median']:,.0f}"
            row["fused"] = f"{rec['fused_fraction_median']:.0%}"
            if "identical" in rec:
                row["identical"] = rec["identical"]
        if "shed_rate" in rec:
            row["shed rate"] = f"{rec['shed_rate']['median']:.0%}"
        rows.append(row)
    print(format_table(rows, title="service bench"))
    print(f"artifact written to {args.bench_out}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """``chaos``: replay a fault schedule, check the invariants.

    Exit code 0 means every resilience invariant held (acked
    placements durable across the crash, route parity after revival,
    shed rate bounded; with ``--replay-check``, also that a second run
    of the same schedule produced the identical fault/health trace).
    Nonzero means the report (printed as JSON) names the violation —
    this is what the CI ``service-chaos`` step runs.
    """
    import json
    import tempfile

    from .resilience.schedule import (
        SCENARIOS,
        ChaosSchedule,
        run_executor_schedule,
        run_schedule,
    )

    if args.schedule is not None:
        schedule = ChaosSchedule.from_json(args.schedule)
    else:
        schedule = SCENARIOS[args.scenario]()
    if args.graph is not None:
        graph = _load_graph(args.graph,
                            cache=getattr(args, "graph_cache", None))
    else:
        from .graph.generators import community_web_graph
        graph = community_web_graph(args.vertices, seed=args.seed)
    config = _config_from_args(args)

    def run_once(tag: str):
        if args.executor:
            return run_executor_schedule(
                schedule, graph, method=config.method,
                parallelism=args.parallelism, num_workers=args.workers,
                max_worker_restarts=args.max_worker_restarts)
        server_kwargs = {}
        if args.processes > 1:
            server_kwargs = {"processes": args.processes,
                             "parallelism": args.parallelism}
        with tempfile.TemporaryDirectory(
                prefix=f"repro-chaos-{tag}-") as tmp:
            return run_schedule(schedule, graph, workdir=tmp,
                                config=config,
                                server_kwargs=server_kwargs)

    report = run_once("a")
    if args.replay_check and not args.executor:
        replay = run_once("b")
        report.check(
            "replay_deterministic",
            report.replay_key() == replay.replay_key(),
            "second run reproduced the identical fault/health trace")
    payload = report.to_dict()
    if args.out is not None:
        from .recovery.atomic import atomic_write_text
        atomic_write_text(Path(args.out),
                          json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    verdict = "ok" if report.ok else "FAILED"
    bad = [inv["name"] for inv in report.invariants if not inv["ok"]]
    print(f"chaos schedule '{schedule.name}': {verdict}"
          + (f" ({', '.join(bad)})" if bad else ""),
          file=sys.stderr)
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _add_heuristic_flags(p: argparse.ArgumentParser, *,
                         methods: list[str],
                         default_method: str = "spnl") -> None:
    """The shared partitioner-tuning flag set (one namespace, one
    :func:`_config_from_args`)."""
    p.add_argument("--method", choices=methods, default=default_method)
    p.add_argument("-k", type=int, default=32, help="number of partitions")
    p.add_argument("--slack", type=float, default=1.1,
                   help="balance threshold δ")
    p.add_argument("--lam", type=float, default=0.5,
                   help="λ weighting in/out neighbors (SPN/SPNL)")
    p.add_argument("--shards", default="auto",
                   help="sliding-window X (int or 'auto')")
    p.add_argument("--gamma-store", default="auto",
                   choices=["auto", "dense", "window", "hashed"],
                   help="Γ expectation store backend for SPN/SPNL "
                        "(default auto: dense or sliding window by "
                        "--shards; 'hashed' caps memory at "
                        "--gamma-buckets rows)")
    p.add_argument("--gamma-buckets", type=int, default=None, metavar="B",
                   help="row count for --gamma-store hashed "
                        "(default: num_vertices // 16, min 1024)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-partition",
        description="SPNL streaming graph partitioning (ICDCS 2023 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic graph file")
    p.add_argument("output", help="adjacency-list output path")
    p.add_argument("--dataset", default=None,
                   help="named benchmark stand-in to build")
    p.add_argument("--vertices", type=int, default=10_000)
    p.add_argument("--avg-degree", type=float, default=12.0)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    from .partitioning.registry import available_partitioners

    p = sub.add_parser("partition", help="partition a graph")
    p.add_argument("graph", help="graph file or named dataset")
    p.add_argument("output", help="route-table output path")
    _add_heuristic_flags(p, methods=available_partitioners())
    p.add_argument("--threads", type=int, default=1,
                   help="parallel placement workers (threaded executor; "
                        "GIL-bound)")
    p.add_argument("--processes", type=int, default=1, metavar="M",
                   help="score M records per group across worker "
                        "processes (sharded executor; deterministic, "
                        "checkpoint/resume capable)")
    p.add_argument("--trace", default=None, metavar="OUT.JSONL",
                   help="write a windowed JSONL stream trace")
    p.add_argument("--probe-every", type=int, default=None, metavar="N",
                   help="probe window size in placements (default 1000; "
                        "without --trace, prints progress to stderr)")
    p.add_argument("--checkpoint-every", type=int, default=None,
                   metavar="N",
                   help="snapshot partitioner state every N records "
                        "(resumable with --resume-from)")
    p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                   help="snapshot directory (default: <output>.ckpt)")
    p.add_argument("--resume-from", default=None, metavar="SNAP",
                   help="resume a crashed pass from a snapshot file or "
                        "its checkpoint directory")
    p.add_argument("--lenient", action="store_true",
                   help="quarantine malformed graph lines to "
                        "<output>.quarantine instead of aborting")
    p.add_argument("--error-budget", type=int, default=100, metavar="N",
                   help="max malformed lines tolerated under --lenient "
                        "(default 100)")
    p.add_argument("--graph-cache", nargs="?", const=True, default=None,
                   metavar="PATH",
                   help="load the graph through a binary .reprocsr cache "
                        "(sidecar next to the input, or an explicit PATH); "
                        "written on first use, mmap-loaded afterwards")
    p.set_defaults(func=_cmd_partition)

    p = sub.add_parser("edgepartition",
                       help="streaming edge partitioning (extension)")
    p.add_argument("graph", help="graph file or named dataset")
    p.add_argument("output", help="per-edge partition-id output path")
    p.add_argument("--method", choices=available_partitioners("edge"),
                   default="spnl-e")
    p.add_argument("-k", type=int, default=32)
    p.add_argument("--slack", type=float, default=1.1)
    p.set_defaults(func=_cmd_edgepartition)

    p = sub.add_parser("evaluate", help="evaluate a route table")
    p.add_argument("graph", help="graph file or named dataset")
    p.add_argument("routes", help="route-table file (one pid per line)")
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("info", help="describe a graph")
    p.add_argument("graph", help="graph file or named dataset")
    p.add_argument("--graph-cache", nargs="?", const=True, default=None,
                   metavar="PATH",
                   help="load through a binary .reprocsr cache")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("analyze",
                       help="introspect a partitioning (cut structure)")
    p.add_argument("graph", help="graph file or named dataset")
    p.add_argument("routes", help="route-table file")
    p.add_argument("--bins", type=int, default=10,
                   help="distance-histogram bins")
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("bench",
                       help="regenerate a paper table/figure, run a "
                            "microbench, or compare/promote artifacts")
    p.add_argument("target",
                   choices=["table2", "table3", "table4", "table5", "fig3",
                            "fig7", "fig8", "fig9", "fig10", "fig11",
                            "fig12", "streaming", "ingest",
                            "parallel-scaling", "all", "compare",
                            "promote", "export", "dashboard"])
    p.add_argument("-k", type=int, default=32)
    p.add_argument("--output", default="reports",
                   help="output directory for 'all'")
    p.add_argument("--quick", action="store_true",
                   help="shrunken sweeps for 'all'/'streaming'")
    p.add_argument("--bench-out", default="BENCH_streaming.json",
                   help="artifact path for the 'streaming' / 'ingest' / "
                        "'parallel-scaling' microbenches (each defaults "
                        "to its own BENCH_*.json)")
    p.add_argument("--baseline", default=None, metavar="FILE|DIR",
                   help="[compare] baseline artifact/envelope file, or a "
                        "baselines directory (default: --baselines-dir, "
                        "resolved by bench name + machine fingerprint)")
    p.add_argument("--candidate", default=None, metavar="FILE",
                   help="[compare/promote] candidate BENCH_*.json")
    p.add_argument("--baselines-dir", default="benchmarks/baselines",
                   metavar="DIR",
                   help="[compare/promote] committed baseline store "
                        "(default: benchmarks/baselines)")
    p.add_argument("--gate", action="store_true",
                   help="[compare] exit nonzero when any metric regressed")
    p.add_argument("--noise-floor", type=float, default=0.05, metavar="F",
                   help="[compare] relative delta below which a metric is "
                        "never flagged (default 0.05 = 5%%)")
    p.add_argument("--min-effect", type=float, default=0.10, metavar="F",
                   help="[compare] smallest relative change worth "
                        "reporting (default 0.10)")
    p.add_argument("--confidence", type=float, default=0.95, metavar="C",
                   help="[compare] bootstrap/test confidence (default "
                        "0.95)")
    p.add_argument("--report", default=None, metavar="OUT.MD",
                   help="[compare] also write the markdown report here")
    p.add_argument("--json", default=None, metavar="OUT.JSON",
                   help="[compare] also write the machine-readable "
                        "verdict here")
    p.add_argument("--trace", default=None, metavar="OUT.JSONL",
                   help="[compare] emit the bench_compare trace record; "
                        "with --profile, emit bench_profile records")
    p.add_argument("--profile", default=None,
                   choices=["cprofile", "pyspy"],
                   help="run each bench stage once more under a profiler "
                        "after the timed repeats; writes per-stage pstats "
                        "(+ collapsed stacks when py-spy is installed) "
                        "and records the profile in the artifact")
    p.add_argument("--profile-dir", default=None, metavar="DIR",
                   help="profile artifact directory (default: "
                        "<bench-out stem>.profile/ next to the BENCH "
                        "json)")
    p.add_argument("--artifacts", nargs="*", default=None, metavar="FILE",
                   help="[export/dashboard] BENCH_*.json files to walk "
                        "(default: ./BENCH_*.json plus --baselines-dir)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="[export/dashboard] output path; '-' streams the "
                        "history JSON to stdout (export default: -, "
                        "dashboard default: dashboard.html)")
    p.add_argument("--csv", default=None, metavar="OUT.CSV",
                   help="[export] also write the rows as tidy CSV")
    p.add_argument("--history", default=None, metavar="FILE",
                   help="[dashboard] render an existing 'bench export' "
                        "JSON instead of re-walking artifacts")
    p.set_defaults(func=_cmd_bench)

    from .partitioning.registry import resolve
    streaming_methods = [m for m in available_partitioners()
                         if resolve(m).is_streaming]

    p = sub.add_parser("serve",
                       help="run the long-lived placement service "
                            "(partition-as-a-service)")
    p.add_argument("graph", help="graph file or named dataset")
    _add_heuristic_flags(p, methods=streaming_methods)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0: pick an ephemeral port, "
                        "reported on the 'listening on' line)")
    p.add_argument("--snapshot-dir", default=None, metavar="DIR",
                   help="durability directory (snapshots + placement "
                        "WAL); omit for a volatile server")
    p.add_argument("--resume-from", default=None, metavar="DIR|SNAP",
                   help="warm-restart from a snapshot directory (or one "
                        "snapshot file): restores state, replays the "
                        "WAL tail, keeps every acked placement")
    p.add_argument("--snapshot-every", type=int, default=100_000,
                   metavar="N",
                   help="auto-snapshot every N placements (default "
                        "100000)")
    p.add_argument("--snapshot-keep", type=int, default=3, metavar="N",
                   help="snapshots retained (default 3)")
    p.add_argument("--no-fsync", action="store_true",
                   help="skip the per-group WAL fsync (faster, loses "
                        "the crash-durability guarantee)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="engine queue bound before backpressure "
                        "(default 64)")
    p.add_argument("--batch-max", type=int, default=256,
                   help="max requests coalesced per engine step "
                        "(default 256)")
    p.add_argument("--shed-watermark", type=float, default=0.85,
                   metavar="F",
                   help="admission control sheds new placements once "
                        "the queue passes this fraction of "
                        "--queue-depth (default 0.85)")
    p.add_argument("--max-lag-seconds", type=float, default=None,
                   metavar="S",
                   help="also shed when the predicted queue wait "
                        "exceeds S seconds (default: queue bound only)")
    p.add_argument("--recovery-probe-interval", type=float, default=0.0,
                   metavar="S",
                   help="while read-only, retry recovery every S "
                        "seconds (default 0: recover only on demand)")
    p.add_argument("--processes", type=int, default=1, metavar="N",
                   help="scoring worker processes (sharded engine; "
                        "default 1: score in the engine thread)")
    p.add_argument("--parallelism", type=int, default=None, metavar="M",
                   help="scoring group size M (default: 16x --processes "
                        "when sharded, else 1); M>1 scores groups "
                        "against group-start state, byte-identical "
                        "across --processes values at the same M")
    p.add_argument("--no-wal-pipeline", action="store_true",
                   help="disable the double-buffered WAL committer "
                        "(fsync inline in the engine thread)")
    p.add_argument("--graph-cache", nargs="?", const=True, default=None,
                   metavar="PATH",
                   help="load through a binary .reprocsr cache")
    p.add_argument("--trace", default=None, metavar="OUT.JSONL",
                   help="write service_request trace records")
    p.add_argument("--probe-every", type=int, default=None, metavar="N",
                   help="trace window size (see 'partition')")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("serve-bench",
                       help="load-test the placement service and write "
                            "BENCH_service.json")
    p.add_argument("graph", nargs="?", default=None,
                   help="graph file or named dataset (default: a "
                        "synthetic community web graph)")
    _add_heuristic_flags(p, methods=streaming_methods)
    p.add_argument("--vertices", type=int, default=20_000,
                   help="synthetic graph size when no graph is given")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent client connections (default 4)")
    p.add_argument("--batch-size", type=int, default=64,
                   help="vertices per place_batch request (default 64; "
                        "keep divisible by --parallelism so the parity "
                        "check can gate)")
    p.add_argument("--window", type=int, default=4, metavar="W",
                   help="pipelined requests in flight per connection "
                        "(open-loop depth, default 4; 1 = closed loop)")
    p.add_argument("--lookups", type=int, default=500, metavar="N",
                   help="lookups per client after the place phase")
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--warmup", type=int, default=1)
    p.add_argument("--target-rps", type=float, default=None,
                   metavar="RPS",
                   help="pace placement requests per second across all "
                        "clients (default: full speed)")
    p.add_argument("--processes", type=int, default=1, metavar="N",
                   help="scoring worker processes for the benched "
                        "server (sharded engine; default 1)")
    p.add_argument("--parallelism", type=int, default=None, metavar="M",
                   help="scoring group size M for the benched server "
                        "(default: 16x --processes when sharded)")
    p.add_argument("--volatile", action="store_true",
                   help="bench without snapshots/WAL (isolates protocol "
                        "+ engine cost)")
    p.add_argument("--queue-depth", type=int, default=64)
    p.add_argument("--batch-max", type=int, default=256)
    p.add_argument("--no-overload", action="store_true",
                   help="skip the overload phase (shed rate + "
                        "p99-under-overload against a throttled server)")
    p.add_argument("--overload-queue-depth", type=int, default=4,
                   metavar="N",
                   help="queue bound for the overload-phase server "
                        "(default 4)")
    p.add_argument("--overload-throttle", type=float, default=0.002,
                   metavar="S",
                   help="seconds per engine group in the overload "
                        "phase (default 0.002)")
    p.add_argument("--quick", action="store_true",
                   help="small graph, 2 repeats (CI smoke)")
    p.add_argument("--profile", default=None,
                   choices=["cprofile", "pyspy"],
                   help="profile extra single-connection driver passes "
                        "after the timed phases; writes per-stage pstats "
                        "next to the artifact")
    p.add_argument("--profile-dir", default=None, metavar="DIR",
                   help="profile artifact directory (default: "
                        "<bench-out stem>.profile/)")
    p.add_argument("--bench-out", default="BENCH_service.json",
                   help="artifact path (default BENCH_service.json)")
    p.add_argument("--graph-cache", nargs="?", const=True, default=None,
                   metavar="PATH",
                   help="load through a binary .reprocsr cache")
    p.set_defaults(func=_cmd_serve_bench)

    p = sub.add_parser(
        "chaos",
        help="replay a deterministic fault schedule against the live "
             "service (or the process executor) and check the "
             "resilience invariants")
    p.add_argument("graph", nargs="?", default=None,
                   help="graph file or named dataset (default: a "
                        "synthetic community web graph)")
    _add_heuristic_flags(p, methods=streaming_methods)
    source = p.add_mutually_exclusive_group()
    # Names mirror repro.resilience.schedule.SCENARIOS (re-validated at
    # run time); kept literal here so `--help` stays import-light.
    source.add_argument("--scenario", default="wal-outage",
                        choices=("wal-outage", "slow-engine", "wal-flap",
                                 "worker-kill"),
                        help="named built-in schedule (default "
                             "wal-outage; worker-kill needs "
                             "--processes >= 2 to bite)")
    source.add_argument("--schedule", default=None, metavar="FILE.json",
                        help="load a ChaosSchedule from JSON instead "
                             "(the to_dict format)")
    p.add_argument("--executor", action="store_true",
                   help="replay kill_worker events against the "
                        "process-sharded executor instead of the "
                        "placement service")
    p.add_argument("--replay-check", action="store_true",
                   help="run the schedule twice and require identical "
                        "fault/health traces (service mode)")
    p.add_argument("--vertices", type=int, default=600,
                   help="synthetic graph size when no graph is given")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--parallelism", type=int, default=4,
                   help="--executor: logical shards; service mode with "
                        "--processes: scoring group size M (default 4)")
    p.add_argument("--workers", type=int, default=2,
                   help="--executor: worker processes (default 2)")
    p.add_argument("--processes", type=int, default=1, metavar="N",
                   help="service mode: scoring worker processes for "
                        "the chaos'd server (default 1; worker-kill "
                        "events are a no-op below 2)")
    p.add_argument("--max-worker-restarts", type=int, default=4,
                   help="--executor: supervision budget (default 4)")
    p.add_argument("--out", default=None, metavar="REPORT.json",
                   help="also write the report JSON here")
    p.add_argument("--graph-cache", nargs="?", const=True, default=None,
                   metavar="PATH",
                   help="load through a binary .reprocsr cache")
    p.set_defaults(func=_cmd_chaos, k=8)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    # normalize shards argument
    if hasattr(args, "shards") and args.shards != "auto":
        args.shards = int(args.shards)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
