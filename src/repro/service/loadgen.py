"""Load generator + bench artifact for the placement service.

Boots a fresh in-process :class:`~repro.service.PlacementService` per
repeat, drives it with N concurrent clients issuing id-ordered
``place_batch`` chunks (the paper's streaming arrival model, sharded
across connections), then samples the read path with ``lookup`` bursts.
Per repeat it records request latencies client-side — the full
round-trip a real consumer would see — and summarizes p50/p95/p99 plus
sustained placements/s.

The artifact (``BENCH_service.json``) follows the repo's bench
conventions (:mod:`repro.bench.micro`): ``machine`` fingerprint,
``config``, and per-endpoint ``runs_s`` sample lists so the PR-5
compare/promote/gate machinery (:mod:`repro.bench.compare`) can verdict
service latency changes statistically.  The latency metrics
(``place_batch/p50`` … ``lookup/p99``) are durations — lower is better —
while throughput rides along as an informational field.  With
``overload=True`` an extra ``place_overload`` record measures the
degraded half: p99 latency of *accepted* requests and the shed rate
while offered load exceeds a deliberately throttled server's capacity
(see :func:`_overload_round`).

A parity check runs after each repeat: the service's final route table
is compared against a batch :func:`repro.partition_stream` pass over the
same graph.  When every repeat's traffic reached the server in exact id
order (the engine's ``arrival_ordered`` flag — concurrent clients can
race), the boolean lands in the artifact as ``identical``, riding the
compare module's byte-identity pseudo-metric; repeats where the arrival
order raced are reported under ``reordered_repeats`` instead of being
allowed to flake the gate.
"""

from __future__ import annotations

import json
import statistics
import tempfile
import threading
import time
from pathlib import Path
from typing import Any

import numpy as np

from ..graph.digraph import DiGraph
from ..graph.generators import community_web_graph
from ..partitioning.config import PartitionConfig
from ..recovery.atomic import atomic_write_text
from .client import BackpressureError, ServiceClient
from .server import PlacementService

__all__ = ["DEFAULT_ARTIFACT", "run_service_bench"]

DEFAULT_ARTIFACT = "BENCH_service.json"


def _summary(times: list[float]) -> dict[str, Any]:
    """The repo-standard per-metric summary (see bench.micro)."""
    return {
        "median_s": statistics.median(times),
        "stdev_s": statistics.stdev(times) if len(times) > 1 else 0.0,
        "min_s": min(times),
        "max_s": max(times),
        "runs_s": times,
    }


def _percentile(ordered: list[float], q: float) -> float:
    idx = max(0, min(len(ordered) - 1, int(-(-q * len(ordered) // 1)) - 1))
    return ordered[idx]


class _ChunkFeed:
    """Hands out consecutive ``[start, stop)`` vertex chunks to clients."""

    def __init__(self, total: int, chunk: int) -> None:
        self._lock = threading.Lock()
        self._next = 0
        self._total = total
        self._chunk = chunk

    def take(self) -> tuple[int, int] | None:
        with self._lock:
            if self._next >= self._total:
                return None
            start = self._next
            stop = min(self._total, start + self._chunk)
            self._next = stop
            return start, stop


def _client_worker(address: tuple[str, int], feed: _ChunkFeed,
                   latencies: list[float], pause: float,
                   errors: list[str]) -> None:
    try:
        with ServiceClient(*address) as client:
            while True:
                chunk = feed.take()
                if chunk is None:
                    return
                start, stop = chunk
                t0 = time.perf_counter()
                client.place_batch(list(range(start, stop)), retries=50)
                latencies.append(time.perf_counter() - t0)
                if pause:
                    time.sleep(pause)
    except Exception as exc:  # surfaced by the driver, never swallowed
        errors.append(repr(exc))


def _lookup_worker(address: tuple[str, int], vertices: np.ndarray,
                   latencies: list[float], errors: list[str]) -> None:
    try:
        with ServiceClient(*address) as client:
            for v in vertices:
                t0 = time.perf_counter()
                client.lookup(int(v))
                latencies.append(time.perf_counter() - t0)
    except Exception as exc:
        errors.append(repr(exc))


def _overload_worker(address: tuple[str, int], feed: _ChunkFeed,
                     latencies: list[float], sheds: list[int],
                     errors: list[str]) -> None:
    """Place chunks against a deliberately under-provisioned server.

    Every shed (``overloaded``/``backpressure``) is counted, then the
    chunk is re-offered after the server's ``retry_after_ms`` hint
    (capped — we are measuring the shed path, not sleeping through it).
    Latencies record accepted attempts only: p99-under-overload is the
    queueing delay survivors actually paid.
    """
    try:
        with ServiceClient(*address) as client:
            while True:
                chunk = feed.take()
                if chunk is None:
                    return
                start, stop = chunk
                while True:
                    t0 = time.perf_counter()
                    try:
                        client.place_batch(list(range(start, stop)))
                    except BackpressureError as exc:
                        sheds[0] += 1
                        time.sleep(min(exc.retry_after_ms, 5) / 1000.0)
                    else:
                        latencies.append(time.perf_counter() - t0)
                        break
    except Exception as exc:
        errors.append(repr(exc))


def _overload_round(graph: DiGraph, config: PartitionConfig, *,
                    clients: int, batch_size: int, num_vertices: int,
                    queue_depth: int, throttle_seconds: float
                    ) -> tuple[list[float], int, dict[str, Any]]:
    """One overload repeat: fresh throttled server, offered load > capacity.

    ``batch_max=1`` makes every request its own engine group so the
    throttle bounds the drain rate directly (one batch per
    ``throttle_seconds``), and the shed watermark sits at half the
    (small) ``queue_depth`` — synchronous clients can only stack the
    queue as deep as their connection count, so the watermark must sit
    below it for admission control to engage at all.  Returns (accepted
    latencies, client-side shed count, server admission stats).
    """
    service = PlacementService.start(
        graph, config=config, port=0, snapshot_dir=None,
        queue_depth=queue_depth, batch_max=1,
        throttle_seconds=throttle_seconds,
        shed_watermark=0.5)
    try:
        feed = _ChunkFeed(num_vertices, batch_size)
        errors: list[str] = []
        lat_lists: list[list[float]] = [[] for _ in range(clients)]
        shed_cells: list[list[int]] = [[0] for _ in range(clients)]
        threads = [
            threading.Thread(
                target=_overload_worker,
                args=(service.address, feed, lat_lists[c],
                      shed_cells[c], errors),
                daemon=True)
            for c in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise RuntimeError(f"serve-bench overload client failed: "
                               f"{errors[0]}")
        admission = service._admission.stats()
    finally:
        service.close()
    latencies = sorted(t for lat in lat_lists for t in lat)
    sheds = sum(cell[0] for cell in shed_cells)
    return latencies, sheds, admission


def run_service_bench(graph: DiGraph | None = None, *,
                      num_vertices: int = 20_000, seed: int = 7,
                      config: PartitionConfig | None = None,
                      clients: int = 4, batch_size: int = 64,
                      lookups_per_client: int = 500,
                      repeats: int = 3, warmup: int = 1,
                      target_rps: float | None = None,
                      durable: bool = True, queue_depth: int = 64,
                      batch_max: int = 256,
                      overload: bool = False,
                      overload_queue_depth: int = 4,
                      overload_throttle: float = 0.002,
                      out_path: str | Path | None = DEFAULT_ARTIFACT,
                      verbose: bool = False) -> dict[str, Any]:
    """Bench the service end to end; returns (and writes) the artifact.

    Each repeat boots a fresh server on an ephemeral port (durable into
    a throwaway snapshot directory unless ``durable=False``), places the
    whole graph through ``clients`` concurrent connections in
    ``batch_size`` chunks, then issues ``lookups_per_client`` random
    lookups per client.  ``target_rps`` paces placement *requests*
    per second across all clients (``None`` = full speed).

    ``overload=True`` appends an overload phase: per repeat, a fresh
    *throttled* server (``overload_throttle`` seconds per engine group,
    ``batch_max=1``, a short ``overload_queue_depth`` queue) is offered
    more load than it can drain, so revision 1.1's admission control
    sheds.  The ``place_overload`` record captures
    p50/p95/p99-under-overload of the accepted requests plus the
    observed ``shed_rate`` — the graceful-degradation half of the
    latency story the healthy-path percentiles cannot show.
    """
    if graph is None:
        graph = community_web_graph(num_vertices, seed=seed)
    if config is None:
        config = PartitionConfig(method="spnl", num_partitions=32)
    from ..api import partition_stream
    reference = partition_stream(graph, config=config)

    pause = 0.0
    if target_rps is not None and target_rps > 0:
        pause = clients / float(target_rps)

    place_p50: list[float] = []
    place_p95: list[float] = []
    place_p99: list[float] = []
    lookup_p50: list[float] = []
    lookup_p99: list[float] = []
    throughputs: list[float] = []
    fused_fractions: list[float] = []
    identical_flags: list[bool] = []
    reordered = 0

    total_rounds = warmup + repeats
    for round_idx in range(total_rounds):
        measured = round_idx >= warmup
        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") \
                as tmp:
            service = PlacementService.start(
                graph, config=config, port=0,
                snapshot_dir=Path(tmp) / "state" if durable else None,
                queue_depth=queue_depth, batch_max=batch_max)
            try:
                feed = _ChunkFeed(graph.num_vertices, batch_size)
                errors: list[str] = []
                lat_lists: list[list[float]] = [[] for _ in
                                                range(clients)]
                threads = [
                    threading.Thread(
                        target=_client_worker,
                        args=(service.address, feed, lat_lists[c],
                              pause, errors),
                        daemon=True)
                    for c in range(clients)
                ]
                t0 = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall = time.perf_counter() - t0
                if errors:
                    raise RuntimeError(
                        f"serve-bench client failed: {errors[0]}")

                rng = np.random.default_rng(seed + round_idx)
                lookup_lat: list[float] = []
                lookup_threads = [
                    threading.Thread(
                        target=_lookup_worker,
                        args=(service.address,
                              rng.integers(0, graph.num_vertices,
                                           size=lookups_per_client),
                              lookup_lat, errors),
                        daemon=True)
                    for _ in range(clients)
                ]
                for thread in lookup_threads:
                    thread.start()
                for thread in lookup_threads:
                    thread.join()
                if errors:
                    raise RuntimeError(
                        f"serve-bench lookup client failed: {errors[0]}")

                place_lat = sorted(t for lat in lat_lists for t in lat)
                lookup_lat.sort()
                ordered = bool(service._arrival_ordered)
                parity = bool(np.array_equal(
                    service._state.route, reference.assignment.route))
                fused = service._fused_placements
                total_placed = fused + service._record_placements
            finally:
                service.close()

        if not measured:
            continue
        place_p50.append(_percentile(place_lat, 0.50))
        place_p95.append(_percentile(place_lat, 0.95))
        place_p99.append(_percentile(place_lat, 0.99))
        lookup_p50.append(_percentile(lookup_lat, 0.50))
        lookup_p99.append(_percentile(lookup_lat, 0.99))
        throughputs.append(graph.num_vertices / wall if wall else 0.0)
        fused_fractions.append(fused / total_placed if total_placed
                               else 0.0)
        if ordered:
            identical_flags.append(parity)
        else:
            reordered += 1
        if verbose:
            print(f"  repeat {len(place_p50)}/{repeats}: "
                  f"{throughputs[-1]:,.0f} placements/s, "
                  f"p99 {place_p99[-1] * 1e3:.2f} ms, "
                  f"fused {fused_fractions[-1]:.0%}"
                  f"{'' if ordered else ' (reordered)'}")

    from ..bench.micro import machine_fingerprint
    place_rec: dict[str, Any] = {
        "endpoint": "place_batch",
        "p50": _summary(place_p50),
        "p95": _summary(place_p95),
        "p99": _summary(place_p99),
        "placements_per_s": {
            "runs": throughputs,
            "median": statistics.median(throughputs),
        },
        "fused_fraction_median": statistics.median(fused_fractions),
        "reordered_repeats": reordered,
    }
    # The parity flag gates only when arrival order held in every
    # measured repeat; a raced arrival legitimately changes the
    # assignment and must not flake the byte-identity pseudo-metric.
    if identical_flags and reordered == 0:
        place_rec["identical"] = all(identical_flags)

    overload_rec: dict[str, Any] | None = None
    if overload:
        o_p50: list[float] = []
        o_p95: list[float] = []
        o_p99: list[float] = []
        shed_rates: list[float] = []
        overload_vertices = min(graph.num_vertices,
                                clients * batch_size * 8)
        for _ in range(repeats):
            # More connections than the healthy phase: offered
            # concurrency must exceed the watermark depth for the
            # throttled engine to shed.
            lat, sheds, admission = _overload_round(
                graph, config, clients=max(4, clients * 2),
                batch_size=batch_size,
                num_vertices=overload_vertices,
                queue_depth=overload_queue_depth,
                throttle_seconds=overload_throttle)
            if not lat:  # pathological: everything shed — skip repeat
                continue
            o_p50.append(_percentile(lat, 0.50))
            o_p95.append(_percentile(lat, 0.95))
            o_p99.append(_percentile(lat, 0.99))
            accepted = len(lat)
            shed_rates.append(sheds / (sheds + accepted)
                              if sheds + accepted else 0.0)
            if verbose:
                print(f"  overload {len(o_p50)}/{repeats}: "
                      f"p99 {o_p99[-1] * 1e3:.2f} ms, "
                      f"shed rate {shed_rates[-1]:.0%} "
                      f"(server: {admission['shed_rate']:.0%})")
        if o_p50:
            overload_rec = {
                "endpoint": "place_overload",
                "p50": _summary(o_p50),
                "p95": _summary(o_p95),
                "p99": _summary(o_p99),
                "shed_rate": {
                    "runs": shed_rates,
                    "median": statistics.median(shed_rates),
                },
                "overload_config": {
                    "queue_depth": overload_queue_depth,
                    "throttle_seconds": overload_throttle,
                    "num_vertices": overload_vertices,
                },
            }

    artifact: dict[str, Any] = {
        "benchmark": "service-bench",
        "created_unix": int(time.time()),
        "machine": machine_fingerprint(),
        "config": {
            "graph": graph.name,
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
            "method": config.method,
            "num_partitions": int(config.num_partitions),
            "clients": clients,
            "batch_size": batch_size,
            "lookups_per_client": lookups_per_client,
            "repeats": repeats,
            "warmup": warmup,
            "target_rps": target_rps,
            "durable": durable,
            "queue_depth": queue_depth,
            "batch_max": batch_max,
            "seed": seed,
            "overload": overload,
        },
        "results": [
            place_rec,
            {
                "endpoint": "lookup",
                "p50": _summary(lookup_p50),
                "p99": _summary(lookup_p99),
            },
        ],
    }
    if overload_rec is not None:
        artifact["results"].append(overload_rec)
    if out_path is not None:
        atomic_write_text(Path(out_path),
                          json.dumps(artifact, indent=2) + "\n")
    return artifact
