"""Load generator + bench artifact for the placement service.

Boots a fresh in-process :class:`~repro.service.PlacementService` per
repeat, drives it with N concurrent *open-loop* connections issuing
id-ordered ``place_batch`` chunks (the paper's streaming arrival model,
sharded across connections), then samples the read path with pipelined
``lookup`` bursts.  Each connection is a raw socket keeping up to
``window`` requests in flight and reading responses in order — the
protocol answers per-connection requests in order, so pipelining needs
no request/response matching beyond a deque.  A closed-loop generator
(one request in flight per connection) cannot saturate a multicore
server: its offered load is bounded by round trips, so every latency
win looks like a throughput win and vice versa.  The windowed open loop
decouples the two, which is what makes sharded-vs-sequential numbers
comparable.

Per repeat the per-connection latency lists are merged before the
percentile cut — a per-connection cut would hide stragglers behind the
fastest connection's volume.  Two honesty fields ride along:

``server_wait_fraction``
    Fraction of the clients' aggregate wall time spent blocked on the
    server's responses.  Near 1.0 means the server was the bottleneck
    (the number measures the server); near 0.0 means the generator was.
``client_bound``
    ``server_wait_fraction < 0.5`` — the load generator (GIL-sharing
    client threads on a small host) was the dominant cost, so the
    throughput figure is a *lower bound* on the server, not a
    measurement of it.  Scaling claims must not be read off a
    ``client_bound`` record.

The artifact (``BENCH_service.json``) follows the repo's bench
conventions (:mod:`repro.bench.micro`): ``machine`` fingerprint,
``config``, and per-endpoint ``runs_s`` sample lists so the PR-5
compare/promote/gate machinery (:mod:`repro.bench.compare`) can verdict
service latency changes statistically.  The latency metrics
(``place_batch/p50`` … ``lookup/p99``) are durations — lower is better —
while throughput rides along as an informational field.  With
``overload=True`` an extra ``place_overload`` record measures the
degraded half: p99 latency of *accepted* requests and the shed rate
while offered load exceeds a deliberately throttled server's capacity
(see :func:`_overload_round`).

Sharded runs (``processes > 1``) record ``mode``/``processes``/
``parallelism`` plus ``scaling_expected``: ``False`` on hosts with
fewer than four CPUs, where process sharding cannot demonstrate a
speedup and a regression gate against a multicore baseline would be
comparing regimes (see the compare module's cross-machine warnings).

A parity check runs after each repeat: the service's final route table
is compared against the matching deterministic reference — a batch
:func:`repro.partition_stream` pass at M=1, or
:class:`~repro.parallel.SimulatedParallelPartitioner` at the same M for
grouped engines.  The check gates only when every measured repeat's
traffic reached the server in exact id order (``arrival_ordered``) and,
for M>1, when the engine's chunk sequence stayed M-aligned
(``m_aligned`` — pick ``batch_size`` divisible by M to keep it so);
repeats where either flag raced are reported under
``reordered_repeats`` instead of being allowed to flake the gate.
"""

from __future__ import annotations

import json
import os
import socket
import statistics
import tempfile
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

import numpy as np

from ..graph.digraph import DiGraph
from ..graph.generators import community_web_graph
from ..partitioning.config import PartitionConfig
from ..recovery.atomic import atomic_write_text
from .client import BackpressureError, ServiceClient
from .protocol import (
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    decode_line,
    encode_message,
)
from .server import PlacementService, resolve_sharded_config

__all__ = ["DEFAULT_ARTIFACT", "run_service_bench"]

DEFAULT_ARTIFACT = "BENCH_service.json"


def _summary(times: list[float]) -> dict[str, Any]:
    """The repo-standard per-metric summary (see bench.micro)."""
    return {
        "median_s": statistics.median(times),
        "stdev_s": statistics.stdev(times) if len(times) > 1 else 0.0,
        "min_s": min(times),
        "max_s": max(times),
        "runs_s": times,
    }


def _percentile(ordered: list[float], q: float) -> float:
    idx = max(0, min(len(ordered) - 1, int(-(-q * len(ordered) // 1)) - 1))
    return ordered[idx]


class _ChunkFeed:
    """Hands out consecutive ``[start, stop)`` vertex chunks to clients."""

    def __init__(self, total: int, chunk: int) -> None:
        self._lock = threading.Lock()
        self._next = 0
        self._total = total
        self._chunk = chunk

    def take(self) -> tuple[int, int] | None:
        with self._lock:
            if self._next >= self._total:
                return None
            start = self._next
            stop = min(self._total, start + self._chunk)
            self._next = stop
            return start, stop


class _ConnStats:
    """One connection's measurements, merged by the driver."""

    __slots__ = ("latencies", "wait_seconds", "retries")

    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.wait_seconds = 0.0
        self.retries = 0


def _open_conn(address: tuple[str, int]) -> tuple[socket.socket, Any]:
    sock = socket.create_connection(address)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock, sock.makefile("rb")


def _place_worker(address: tuple[str, int], feed: _ChunkFeed,
                  window: int, pause: float, out: _ConnStats,
                  errors: list[str]) -> None:
    """One open-loop connection: up to ``window`` requests in flight.

    Responses come back in request order (the protocol's per-connection
    guarantee), so one deque of (send time, chunk) pairs is the whole
    bookkeeping.  A retryable rejection (``backpressure``/
    ``overloaded``) re-offers the chunk through the same window — no
    sleep, because the window itself paces: a re-send only happens
    after a response drained, so offered load tracks the server's
    actual drain rate instead of spinning.
    """
    try:
        sock, rfile = _open_conn(address)
        inflight: deque[tuple[int, float, tuple[int, int]]] = deque()
        retry_chunks: deque[tuple[int, int]] = deque()
        next_id = 0
        try:
            while True:
                while len(inflight) < window:
                    if retry_chunks:
                        chunk = retry_chunks.popleft()
                    else:
                        maybe = feed.take()
                        if maybe is None:
                            break
                        chunk = maybe
                    start, stop = chunk
                    payload = encode_message({
                        "protocol": PROTOCOL_VERSION,
                        "op": "place_batch", "id": next_id,
                        "items": list(range(start, stop))})
                    t0 = time.perf_counter()
                    sock.sendall(payload)
                    inflight.append((next_id, t0, chunk))
                    next_id += 1
                    if pause:
                        time.sleep(pause)
                if not inflight:
                    return
                t_wait = time.perf_counter()
                line = rfile.readline()
                now = time.perf_counter()
                out.wait_seconds += now - t_wait
                if not line:
                    raise RuntimeError("server closed the connection")
                response = decode_line(line)
                rid, t0, chunk = inflight.popleft()
                if response.get("id") != rid:
                    raise RuntimeError(
                        f"pipelined response id {response.get('id')!r} "
                        f"!= expected {rid}")
                if response.get("ok"):
                    out.latencies.append(now - t0)
                else:
                    error = response.get("error") or {}
                    if error.get("code") in RETRYABLE_CODES:
                        out.retries += 1
                        retry_chunks.append(chunk)
                    else:
                        raise RuntimeError(
                            f"place_batch failed: {error}")
        finally:
            rfile.close()
            sock.close()
    except Exception as exc:  # surfaced by the driver, never swallowed
        errors.append(repr(exc))


def _lookup_worker(address: tuple[str, int], vertices: np.ndarray,
                   window: int, out: _ConnStats,
                   errors: list[str]) -> None:
    """Pipelined lookups: same windowed open loop, read-path ops."""
    try:
        sock, rfile = _open_conn(address)
        inflight: deque[tuple[int, float]] = deque()
        cursor = 0
        next_id = 0
        try:
            while True:
                while len(inflight) < window and cursor < len(vertices):
                    payload = encode_message({
                        "protocol": PROTOCOL_VERSION, "op": "lookup",
                        "id": next_id,
                        "vertex": int(vertices[cursor])})
                    t0 = time.perf_counter()
                    sock.sendall(payload)
                    inflight.append((next_id, t0))
                    next_id += 1
                    cursor += 1
                if not inflight:
                    return
                t_wait = time.perf_counter()
                line = rfile.readline()
                now = time.perf_counter()
                out.wait_seconds += now - t_wait
                if not line:
                    raise RuntimeError("server closed the connection")
                response = decode_line(line)
                rid, t0 = inflight.popleft()
                if response.get("id") != rid:
                    raise RuntimeError(
                        f"pipelined response id {response.get('id')!r} "
                        f"!= expected {rid}")
                if not response.get("ok"):
                    raise RuntimeError(
                        f"lookup failed: {response.get('error')}")
                out.latencies.append(now - t0)
        finally:
            rfile.close()
            sock.close()
    except Exception as exc:
        errors.append(repr(exc))


def _overload_worker(address: tuple[str, int], feed: _ChunkFeed,
                     latencies: list[float], sheds: list[int],
                     errors: list[str]) -> None:
    """Place chunks against a deliberately under-provisioned server.

    Deliberately *closed-loop* (one request in flight): the overload
    phase measures the shed path's behavior at a known offered
    concurrency, so the connection count — not a window — is the load
    knob.  Every shed (``overloaded``/``backpressure``) is counted,
    then the chunk is re-offered after the server's ``retry_after_ms``
    hint (capped — we are measuring the shed path, not sleeping through
    it).  Latencies record accepted attempts only: p99-under-overload
    is the queueing delay survivors actually paid.
    """
    try:
        with ServiceClient(*address) as client:
            while True:
                chunk = feed.take()
                if chunk is None:
                    return
                start, stop = chunk
                while True:
                    t0 = time.perf_counter()
                    try:
                        client.place_batch(list(range(start, stop)))
                    except BackpressureError as exc:
                        sheds[0] += 1
                        time.sleep(min(exc.retry_after_ms, 5) / 1000.0)
                    else:
                        latencies.append(time.perf_counter() - t0)
                        break
    except Exception as exc:
        errors.append(repr(exc))


def _overload_round(graph: DiGraph, config: PartitionConfig, *,
                    clients: int, batch_size: int, num_vertices: int,
                    queue_depth: int, throttle_seconds: float
                    ) -> tuple[list[float], int, dict[str, Any]]:
    """One overload repeat: fresh throttled server, offered load > capacity.

    ``batch_max=1`` makes every request its own engine group so the
    throttle bounds the drain rate directly (one batch per
    ``throttle_seconds``), and the shed watermark sits at half the
    (small) ``queue_depth`` — synchronous clients can only stack the
    queue as deep as their connection count, so the watermark must sit
    below it for admission control to engage at all.  Returns (accepted
    latencies, client-side shed count, server admission stats).
    """
    service = PlacementService.start(
        graph, config=config, port=0, snapshot_dir=None,
        queue_depth=queue_depth, batch_max=1,
        throttle_seconds=throttle_seconds,
        shed_watermark=0.5)
    try:
        feed = _ChunkFeed(num_vertices, batch_size)
        errors: list[str] = []
        lat_lists: list[list[float]] = [[] for _ in range(clients)]
        shed_cells: list[list[int]] = [[0] for _ in range(clients)]
        threads = [
            threading.Thread(
                target=_overload_worker,
                args=(service.address, feed, lat_lists[c],
                      shed_cells[c], errors),
                daemon=True)
            for c in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise RuntimeError(f"serve-bench overload client failed: "
                               f"{errors[0]}")
        admission = service._admission.stats()
    finally:
        service.close()
    latencies = sorted(t for lat in lat_lists for t in lat)
    sheds = sum(cell[0] for cell in shed_cells)
    return latencies, sheds, admission


def _reference_route(graph: DiGraph, config: PartitionConfig,
                     parallelism: int) -> np.ndarray:
    """The deterministic route table this traffic should reproduce."""
    if parallelism > 1:
        from ..graph import GraphStream
        from ..parallel import SimulatedParallelPartitioner
        sim = SimulatedParallelPartitioner(
            config.make(), parallelism=parallelism, use_rct=False)
        return sim.partition(GraphStream(graph)).assignment.route
    from ..api import partition_stream
    return partition_stream(graph, config=config).assignment.route


def run_service_bench(graph: DiGraph | None = None, *,
                      num_vertices: int = 20_000, seed: int = 7,
                      config: PartitionConfig | None = None,
                      clients: int = 4, batch_size: int = 64,
                      window: int = 4,
                      lookups_per_client: int = 500,
                      repeats: int = 3, warmup: int = 1,
                      target_rps: float | None = None,
                      durable: bool = True, queue_depth: int = 64,
                      batch_max: int = 256,
                      processes: int = 1,
                      parallelism: int | None = None,
                      overload: bool = False,
                      overload_queue_depth: int = 4,
                      overload_throttle: float = 0.002,
                      out_path: str | Path | None = DEFAULT_ARTIFACT,
                      verbose: bool = False,
                      profile=None) -> dict[str, Any]:
    """Bench the service end to end; returns (and writes) the artifact.

    Each repeat boots a fresh server on an ephemeral port (durable into
    a throwaway snapshot directory unless ``durable=False``), places the
    whole graph through ``clients`` open-loop connections in
    ``batch_size`` chunks with up to ``window`` requests in flight per
    connection, then issues ``lookups_per_client`` pipelined random
    lookups per client.  ``target_rps`` paces placement *requests* per
    second across all clients (``None`` = full speed).

    ``processes``/``parallelism`` boot the sharded scoring engine
    (see :class:`~repro.service.PlacementService`); the artifact then
    records the engine shape and a ``scaling_expected`` flag that is
    ``False`` below four CPUs — single-core hosts can demonstrate
    correctness of the sharded path but not its speedup.

    ``overload=True`` appends an overload phase: per repeat, a fresh
    *throttled* server (``overload_throttle`` seconds per engine group,
    ``batch_max=1``, a short ``overload_queue_depth`` queue) is offered
    more load than it can drain, so revision 1.1's admission control
    sheds.  The ``place_overload`` record captures
    p50/p95/p99-under-overload of the accepted requests plus the
    observed ``shed_rate`` — the graceful-degradation half of the
    latency story the healthy-path percentiles cannot show.

    ``profile`` (a :class:`repro.bench.profile.BenchProfiler`) appends
    two *extra* single-connection driver passes against fresh servers
    after the timed repeats — one ``place_batch/driver`` and one
    ``lookup/driver`` stage.  The timed repeats (and the artifact's
    latency samples) are untouched.  cProfile sees the calling thread
    only, so these stages profile the client driver's protocol path
    (encode/decode, socket waits) with server time showing up as
    ``readline`` wait; the profiled place pass's final route table is
    still parity-checked against the deterministic reference.  The
    overhead reference is a matching unprofiled single-connection pass,
    not the multi-client repeats, so ``overhead_pct`` compares like
    with like.
    """
    if graph is None:
        graph = community_web_graph(num_vertices, seed=seed)
    if config is None:
        config = PartitionConfig(method="spnl", num_partitions=32)
    if window < 1:
        raise ValueError("window must be >= 1")
    if processes < 1:
        raise ValueError("processes must be >= 1")
    resolved_m = parallelism if parallelism is not None else (
        16 * processes if processes > 1 else 1)
    mode = ("sharded" if processes > 1
            else "grouped" if resolved_m > 1 else "sequential")
    cpu_count = os.cpu_count() or 1
    scaling_expected = processes > 1 and cpu_count >= 4
    # Same Γ-store resolution the server applies (auto -> dense when
    # sharded): the reference partitioner must score against the store
    # the benched server actually uses or the parity flag lies.
    config = resolve_sharded_config(config, processes)
    reference = _reference_route(graph, config, resolved_m)

    pause = 0.0
    if target_rps is not None and target_rps > 0:
        pause = clients / float(target_rps)

    place_p50: list[float] = []
    place_p95: list[float] = []
    place_p99: list[float] = []
    lookup_p50: list[float] = []
    lookup_p99: list[float] = []
    throughputs: list[float] = []
    lookup_rates: list[float] = []
    fused_fractions: list[float] = []
    wait_fractions: list[float] = []
    lookup_wait_fractions: list[float] = []
    identical_flags: list[bool] = []
    reordered = 0
    retried_requests = 0

    total_rounds = warmup + repeats
    for round_idx in range(total_rounds):
        measured = round_idx >= warmup
        with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") \
                as tmp:
            service = PlacementService.start(
                graph, config=config, port=0,
                snapshot_dir=Path(tmp) / "state" if durable else None,
                queue_depth=queue_depth, batch_max=batch_max,
                processes=processes, parallelism=parallelism)
            try:
                feed = _ChunkFeed(graph.num_vertices, batch_size)
                errors: list[str] = []
                conns = [_ConnStats() for _ in range(clients)]
                threads = [
                    threading.Thread(
                        target=_place_worker,
                        args=(service.address, feed, window, pause,
                              conns[c], errors),
                        daemon=True)
                    for c in range(clients)
                ]
                t0 = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                wall = time.perf_counter() - t0
                if errors:
                    raise RuntimeError(
                        f"serve-bench client failed: {errors[0]}")

                rng = np.random.default_rng(seed + round_idx)
                lookup_conns = [_ConnStats() for _ in range(clients)]
                lookup_threads = [
                    threading.Thread(
                        target=_lookup_worker,
                        args=(service.address,
                              rng.integers(0, graph.num_vertices,
                                           size=lookups_per_client),
                              window, lookup_conns[c], errors),
                        daemon=True)
                    for c in range(clients)
                ]
                t1 = time.perf_counter()
                for thread in lookup_threads:
                    thread.start()
                for thread in lookup_threads:
                    thread.join()
                lookup_wall = time.perf_counter() - t1
                if errors:
                    raise RuntimeError(
                        f"serve-bench lookup client failed: {errors[0]}")

                place_lat = sorted(t for conn in conns
                                   for t in conn.latencies)
                lookup_lat = sorted(t for conn in lookup_conns
                                    for t in conn.latencies)
                round_retries = sum(conn.retries for conn in conns)
                wait_frac = (sum(conn.wait_seconds for conn in conns)
                             / (clients * wall)) if wall else 0.0
                lookup_wait_frac = (
                    sum(conn.wait_seconds for conn in lookup_conns)
                    / (clients * lookup_wall)) if lookup_wall else 0.0
                # Parity gates on exact-id-order arrival; grouped
                # engines additionally need the chunk sequence to have
                # stayed M-aligned (see the module docstring).
                ordered = bool(service._arrival_ordered) and (
                    resolved_m == 1 or bool(service._m_aligned))
                parity = bool(np.array_equal(
                    service._state.route, reference))
                fused = service._fused_placements
                total_placed = fused + service._record_placements
            finally:
                service.close()

        if not measured:
            continue
        place_p50.append(_percentile(place_lat, 0.50))
        place_p95.append(_percentile(place_lat, 0.95))
        place_p99.append(_percentile(place_lat, 0.99))
        lookup_p50.append(_percentile(lookup_lat, 0.50))
        lookup_p99.append(_percentile(lookup_lat, 0.99))
        throughputs.append(graph.num_vertices / wall if wall else 0.0)
        lookup_rates.append(len(lookup_lat) / lookup_wall
                            if lookup_wall else 0.0)
        fused_fractions.append(fused / total_placed if total_placed
                               else 0.0)
        wait_fractions.append(wait_frac)
        lookup_wait_fractions.append(lookup_wait_frac)
        retried_requests += round_retries
        if ordered:
            identical_flags.append(parity)
        else:
            reordered += 1
        if verbose:
            print(f"  repeat {len(place_p50)}/{repeats}: "
                  f"{throughputs[-1]:,.0f} placements/s, "
                  f"p99 {place_p99[-1] * 1e3:.2f} ms, "
                  f"fused {fused_fractions[-1]:.0%}, "
                  f"server-wait {wait_frac:.0%}"
                  f"{'' if ordered else ' (reordered)'}")

    from ..bench.micro import machine_fingerprint
    server_wait_median = statistics.median(wait_fractions)
    lookup_wait_median = statistics.median(lookup_wait_fractions)
    place_rec: dict[str, Any] = {
        "endpoint": "place_batch",
        "p50": _summary(place_p50),
        "p95": _summary(place_p95),
        "p99": _summary(place_p99),
        "placements_per_s": {
            "runs": throughputs,
            "median": statistics.median(throughputs),
        },
        "fused_fraction_median": statistics.median(fused_fractions),
        "server_wait_fraction": server_wait_median,
        "client_bound": server_wait_median < 0.5,
        "retried_requests": retried_requests,
        "reordered_repeats": reordered,
        "scaling_expected": scaling_expected,
    }
    # The parity flag gates only when arrival order (and, for grouped
    # engines, M-alignment) held in every measured repeat; a raced
    # arrival legitimately changes the assignment and must not flake
    # the byte-identity pseudo-metric.
    if identical_flags and reordered == 0:
        place_rec["identical"] = all(identical_flags)

    lookup_rec: dict[str, Any] = {
        "endpoint": "lookup",
        "p50": _summary(lookup_p50),
        "p99": _summary(lookup_p99),
        "lookups_per_s": {
            "runs": lookup_rates,
            "median": statistics.median(lookup_rates),
        },
        "server_wait_fraction": lookup_wait_median,
        "client_bound": lookup_wait_median < 0.5,
        "scaling_expected": scaling_expected,
    }

    overload_rec: dict[str, Any] | None = None
    if overload:
        o_p50: list[float] = []
        o_p95: list[float] = []
        o_p99: list[float] = []
        shed_rates: list[float] = []
        overload_vertices = min(graph.num_vertices,
                                clients * batch_size * 8)
        for _ in range(repeats):
            # More connections than the healthy phase: offered
            # concurrency must exceed the watermark depth for the
            # throttled engine to shed.
            lat, sheds, admission = _overload_round(
                graph, config, clients=max(4, clients * 2),
                batch_size=batch_size,
                num_vertices=overload_vertices,
                queue_depth=overload_queue_depth,
                throttle_seconds=overload_throttle)
            if not lat:  # pathological: everything shed — skip repeat
                continue
            o_p50.append(_percentile(lat, 0.50))
            o_p95.append(_percentile(lat, 0.95))
            o_p99.append(_percentile(lat, 0.99))
            accepted = len(lat)
            shed_rates.append(sheds / (sheds + accepted)
                              if sheds + accepted else 0.0)
            if verbose:
                print(f"  overload {len(o_p50)}/{repeats}: "
                      f"p99 {o_p99[-1] * 1e3:.2f} ms, "
                      f"shed rate {shed_rates[-1]:.0%} "
                      f"(server: {admission['shed_rate']:.0%})")
        if o_p50:
            overload_rec = {
                "endpoint": "place_overload",
                "p50": _summary(o_p50),
                "p95": _summary(o_p95),
                "p99": _summary(o_p99),
                "shed_rate": {
                    "runs": shed_rates,
                    "median": statistics.median(shed_rates),
                },
                "overload_config": {
                    "queue_depth": overload_queue_depth,
                    "throttle_seconds": overload_throttle,
                    "num_vertices": overload_vertices,
                },
            }

    if profile is not None:
        def _boot(tmp: str) -> PlacementService:
            return PlacementService.start(
                graph, config=config, port=0,
                snapshot_dir=Path(tmp) / "state" if durable else None,
                queue_depth=queue_depth, batch_max=batch_max,
                processes=processes, parallelism=parallelism)

        def _place_pass(service: PlacementService) -> _ConnStats:
            feed = _ChunkFeed(graph.num_vertices, batch_size)
            stats_ = _ConnStats()
            errs: list[str] = []
            _place_worker(service.address, feed, window, pause, stats_,
                          errs)
            if errs:
                raise RuntimeError(f"profiled place pass failed: "
                                   f"{errs[0]}")
            return stats_

        def _lookup_pass(service: PlacementService) -> _ConnStats:
            rng = np.random.default_rng(seed)
            stats_ = _ConnStats()
            errs: list[str] = []
            _lookup_worker(service.address,
                           rng.integers(0, graph.num_vertices,
                                        size=lookups_per_client),
                           window, stats_, errs)
            if errs:
                raise RuntimeError(f"profiled lookup pass failed: "
                                   f"{errs[0]}")
            return stats_

        # Unprofiled single-connection reference timings first, so the
        # recorded overhead compares the same workload shape.
        with tempfile.TemporaryDirectory(
                prefix="repro-serve-bench-") as tmp:
            ref_service = _boot(tmp)
            try:
                t0 = time.perf_counter()
                _place_pass(ref_service)
                place_ref_s = time.perf_counter() - t0
                t0 = time.perf_counter()
                _lookup_pass(ref_service)
                lookup_ref_s = time.perf_counter() - t0
            finally:
                ref_service.close()
        with tempfile.TemporaryDirectory(
                prefix="repro-serve-bench-") as tmp:
            prof_service = _boot(tmp)
            try:
                profile.profile_stage(
                    "place_batch/driver",
                    lambda: _place_pass(prof_service),
                    reference_s=place_ref_s,
                    check=lambda _res: bool(
                        prof_service._arrival_ordered
                        and (resolved_m == 1
                             or prof_service._m_aligned)
                        and np.array_equal(prof_service._state.route,
                                           reference)))
                profile.profile_stage(
                    "lookup/driver",
                    lambda: _lookup_pass(prof_service),
                    reference_s=lookup_ref_s)
            finally:
                prof_service.close()

    # Sharded runs are their own benchmark kind: a sharded artifact
    # gating against a sequential baseline (or vice versa) would be a
    # cross-regime comparison, and the compare module's kind check
    # turns that into a hard error instead of a quiet verdict.  It
    # also gives the sharded baseline its own slot in the baseline
    # store, which files baselines per (kind, fingerprint).
    artifact: dict[str, Any] = {
        "benchmark": ("service-bench-sharded" if processes > 1
                      else "service-bench"),
        "created_unix": int(time.time()),
        "machine": machine_fingerprint(),
        "config": {
            "graph": graph.name,
            "num_vertices": int(graph.num_vertices),
            "num_edges": int(graph.num_edges),
            "method": config.method,
            "num_partitions": int(config.num_partitions),
            **({"gamma_store": config.gamma_store}
               if config.gamma_store is not None else {}),
            "clients": clients,
            "batch_size": batch_size,
            "window": window,
            "lookups_per_client": lookups_per_client,
            "repeats": repeats,
            "warmup": warmup,
            "target_rps": target_rps,
            "durable": durable,
            "queue_depth": queue_depth,
            "batch_max": batch_max,
            "mode": mode,
            "processes": processes,
            "parallelism": resolved_m,
            "scaling_expected": scaling_expected,
            "seed": seed,
            "overload": overload,
        },
        "results": [
            place_rec,
            lookup_rec,
        ],
    }
    if overload_rec is not None:
        artifact["results"].append(overload_rec)
    if profile is not None:
        artifact["profile"] = profile.entry()
    if out_path is not None:
        atomic_write_text(Path(out_path),
                          json.dumps(artifact, indent=2) + "\n")
    return artifact
