"""Wire protocol for the placement service (version 1).

Transport is a plain TCP connection carrying newline-delimited UTF-8
JSON: one object per line, requests up and responses down, answered in
order per connection.  Every request names the protocol version it
speaks::

    {"protocol": 1, "op": "place", "id": 7, "vertex": 42,
     "neighbors": [1, 2, 3]}

and every response echoes the request ``id`` (an opaque client-chosen
value) with an ``ok`` discriminator::

    {"id": 7, "ok": true, "vertex": 42, "pid": 3, "cached": false}
    {"id": 7, "ok": false,
     "error": {"code": "backpressure", "message": "...",
               "retry_after_ms": 20}}

**Versioning contract.**  The integer :data:`PROTOCOL_VERSION` only
bumps on a *breaking* change (field removed, meaning changed).  Adding
fields to requests or responses is non-breaking by rule: servers ignore
request fields they do not know, clients ignore response fields they do
not know.  A server answers a request carrying an unsupported version
with ``code: "unsupported-protocol"`` and the list it speaks
(``supported: [1]``), so a client can detect the mismatch on its first
exchange — the ``hello`` handshake exists exactly for that probe.

**Revision 1.1** (additive — still ``protocol: 1`` on the wire; see
:data:`PROTOCOL_REVISION`) adds the resilience surface:

* ``place``/``place_batch`` requests may carry ``deadline_ms``, the
  client's total latency budget for the request.  A server that can
  already tell the budget is unmeetable (expected engine wait exceeds
  it) or finds it expired while the request was queued answers
  ``code: "deadline_exceeded"`` without applying the placement.
  Servers predating 1.1 ignore the field — the request degrades to
  best-effort, exactly what additive evolution promises.
* New load-shed error code ``overloaded``: admission control rejected
  the request *before* the bounded queue filled (queue-depth or
  engine-lag watermark).  Like ``backpressure`` it carries
  ``retry_after_ms``; clients treat both as retryable.
* New error code ``read_only``: the server degraded to read-only
  serving (WAL write failure, repeated snapshot failure) and rejects
  mutations while lookups/stats/health keep working.  Not retryable on
  a timer — the server announces recovery via ``health``'s
  ``health_state`` field, also new in 1.1.

**Revision 1.2** (additive — still ``protocol: 1`` on the wire) adds
the multicore-serving surface, all of it response-side:

* ``stats`` gains an ``engine`` object (``mode``/``parallelism``/
  ``processes``/``chunks_scored``/``pool_chunks``/``m_aligned``/
  ``worker_restarts``/``wal_pipeline``) describing the scoring
  engine's shape, and a ``read_view`` object (``seq``/``retries``)
  for the seqlock read path.
* ``stats.durability`` gains ``wal_pipelined_groups`` and
  ``wal_inflight_requests`` when the double-buffered WAL committer
  is active.
* No request field changed and no error code was added: a 1.1 client
  talks to a 1.2 server (and vice versa) unmodified.

Operations (see ``docs/service.md`` for the full reference):

``hello``
    Version/identity handshake; returns server info + the boot config.
``place``
    Place one vertex (neighbors explicit, or from the loaded graph).
``place_batch``
    Place many vertices in one round trip (``items``).
``lookup``
    Partition id of a placed vertex (``pid: null`` when unplaced).
``stats``
    Live counters, loads, and per-endpoint latency percentiles.
``snapshot``
    Force a durable snapshot now; returns its path + position.
``health``
    Liveness/readiness probe (cheap; never touches the engine queue).

Error codes: ``bad-request``, ``unsupported-protocol``,
``unknown-vertex``, ``backpressure`` (bounded queue full — retry after
``retry_after_ms``), ``overloaded`` (admission control shed the request
— retry after ``retry_after_ms``), ``deadline_exceeded`` (the request's
``deadline_ms`` budget cannot be / was not met), ``read_only`` (server
degraded; mutations rejected), ``draining`` (server is shutting down),
``internal``.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "MAX_LINE_BYTES",
    "PROTOCOL_VERSION",
    "PROTOCOL_REVISION",
    "RETRYABLE_CODES",
    "SUPPORTED_PROTOCOLS",
    "OPS",
    "ProtocolError",
    "decode_line",
    "encode_message",
    "error_body",
    "validate_request",
]

PROTOCOL_VERSION = 1
SUPPORTED_PROTOCOLS = (1,)

#: Human-readable additive revision within :data:`PROTOCOL_VERSION`.
#: Advertised in ``hello`` so clients can feature-detect the resilience
#: surface (1.1: ``deadline_ms``, ``overloaded``/``deadline_exceeded``/
#: ``read_only`` codes) and the multicore-serving stats surface (1.2:
#: ``engine``/``read_view`` objects) without a breaking version bump.
PROTOCOL_REVISION = "1.2"

#: Error codes a client may safely retry after backing off — the server
#: rejected the request *without* applying it and expects the condition
#: to clear.  ``read_only``/``draining`` are deliberately absent:
#: retrying on a timer cannot help a server that announced it will
#: refuse mutations until an operator-visible state change.
RETRYABLE_CODES = frozenset({"backpressure", "overloaded"})

#: Every operation a version-1 server answers.
OPS = ("hello", "place", "place_batch", "lookup", "stats", "snapshot",
       "health")

#: Upper bound on one request/response line.  A line is buffered whole
#: before parsing, so the bound is what keeps a malicious or confused
#: client from ballooning server memory; generous enough for a
#: place_batch of tens of thousands of placements.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed frame: not JSON, not an object, or oversized."""

    def __init__(self, message: str, *, code: str = "bad-request") -> None:
        super().__init__(message)
        self.code = code


def encode_message(obj: dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + the terminating newline."""
    return json.dumps(obj, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one received line into a message dict.

    Raises :class:`ProtocolError` (never json's own errors) so servers
    and clients can map every malformed frame to one error path.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"frame of {len(line)} bytes exceeds the {MAX_LINE_BYTES}-"
            f"byte line limit")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


def error_body(code: str, message: str, **extra: Any) -> dict[str, Any]:
    """The ``error`` payload of a failure response."""
    body: dict[str, Any] = {"code": code, "message": message}
    body.update(extra)
    return body


def validate_request(request: dict[str, Any]) -> str:
    """Check version + op of a decoded request; returns the op name.

    Raises :class:`ProtocolError` with the right error code for the
    three ways a structurally-valid JSON object can still be
    unanswerable: missing/unsupported protocol version, missing op,
    unknown op.  Unknown *extra fields* are deliberately not rejected —
    that is the additive-evolution rule that keeps version 1 stable.
    """
    version = request.get("protocol")
    if version not in SUPPORTED_PROTOCOLS:
        raise ProtocolError(
            f"unsupported protocol version {version!r}; this server "
            f"speaks {list(SUPPORTED_PROTOCOLS)}",
            code="unsupported-protocol")
    op = request.get("op")
    if not isinstance(op, str) or not op:
        raise ProtocolError("request is missing the 'op' field")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; this server answers {list(OPS)}")
    return op
