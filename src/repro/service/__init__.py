"""Partition-as-a-service: a long-lived placement server + client.

The online counterpart of :func:`repro.partition_stream`.  A
:class:`PlacementService` loads a graph once, holds live partitioner
state, and answers ``place`` / ``place_batch`` / ``lookup`` / ``stats``
/ ``snapshot`` / ``health`` over a versioned newline-JSON TCP protocol
(``protocol: 1`` — the full reference lives in ``docs/service.md``)::

    import repro
    graph = repro.community_web_graph(10_000, seed=7)
    with repro.serve(graph) as service, repro.connect(service) as client:
        pid = client.place(0)["pid"]
        assert client.lookup(0) == pid

Durability comes from the recovery layer: periodic snapshots plus a
group-commit placement WAL mean a SIGKILLed server restarted with
``resume_from=`` answers every previously-acknowledged placement
identically.  ``repro-partition serve`` runs the server from the shell;
``repro-partition serve-bench`` (:func:`run_service_bench`) measures it
and emits ``BENCH_service.json`` for the bench compare/promote gate.
"""

from .client import (
    BackpressureError,
    DeadlineExceededError,
    OverloadedError,
    ReadOnlyError,
    RetriesExhausted,
    ServiceClient,
    ServiceError,
)
from .loadgen import run_service_bench
from .protocol import (
    PROTOCOL_REVISION,
    PROTOCOL_VERSION,
    SUPPORTED_PROTOCOLS,
    ProtocolError,
)
from .server import PlacementService
from .wal import PlacementLog, WalEntry, replay_entries

__all__ = [
    "BackpressureError",
    "DeadlineExceededError",
    "OverloadedError",
    "PROTOCOL_REVISION",
    "PROTOCOL_VERSION",
    "PlacementLog",
    "PlacementService",
    "ProtocolError",
    "ReadOnlyError",
    "RetriesExhausted",
    "SUPPORTED_PROTOCOLS",
    "ServiceClient",
    "ServiceError",
    "WalEntry",
    "replay_entries",
    "run_service_bench",
]
