"""Python client for the placement service.

Thin, dependency-free, and thread-safe: one TCP connection, one request
in flight at a time (a lock serializes callers — open several clients
for real concurrency).  On connect the client performs the ``hello``
handshake, so a protocol-version mismatch surfaces as a
:class:`ServiceError` immediately instead of as a confusing failure on
the first real request::

    import repro
    service = repro.serve(graph)
    with repro.connect(service) as client:
        pid = client.place(0)["pid"]
        assert client.lookup(0) == pid

Backpressure is a first-class outcome, not an exception to hide: a full
engine queue raises :class:`BackpressureError` carrying the server's
``retry_after_ms`` hint.  ``place``/``place_batch`` accept
``retries=N`` to absorb short bursts by honouring that hint before
giving up.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any

from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_line,
    encode_message,
)

__all__ = ["BackpressureError", "ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A request the server answered with ``ok: false``."""

    def __init__(self, code: str, message: str,
                 error: dict[str, Any] | None = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.error = error or {}


class BackpressureError(ServiceError):
    """The engine queue was full; retry after :attr:`retry_after_ms`."""

    @property
    def retry_after_ms(self) -> int:
        return int(self.error.get("retry_after_ms", 25))


class ServiceClient:
    """One connection to a :class:`~repro.service.PlacementService`."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0,
                 handshake: bool = True) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._fh = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        #: The server's ``hello`` response (identity, config, graph).
        self.server_info: dict[str, Any] = {}
        if handshake:
            self.server_info = self.hello()

    # -- transport -----------------------------------------------------
    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """One round trip; returns the ``ok`` response body.

        Raises :class:`ServiceError` (or :class:`BackpressureError` for
        ``code: "backpressure"``) when the server answers a failure.
        """
        with self._lock:
            if self._closed:
                raise ServiceError("closed", "client is closed")
            self._next_id += 1
            request_id = self._next_id
            message = {"protocol": PROTOCOL_VERSION, "op": op,
                       "id": request_id}
            message.update(fields)
            self._sock.sendall(encode_message(message))
            line = self._fh.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ServiceError(
                "disconnected", "server closed the connection")
        response = decode_line(line)
        if response.get("id") != request_id:
            raise ServiceError(
                "desync", f"response id {response.get('id')!r} does not "
                          f"match request id {request_id}")
        if not response.get("ok"):
            error = response.get("error") or {}
            code = error.get("code", "internal")
            cls = BackpressureError if code == "backpressure" \
                else ServiceError
            raise cls(code, error.get("message", "request failed"),
                      error)
        return response

    def _with_retries(self, retries: int, op: str,
                      **fields: Any) -> dict[str, Any]:
        attempt = 0
        while True:
            try:
                return self.request(op, **fields)
            except BackpressureError as exc:
                if attempt >= retries:
                    raise
                attempt += 1
                time.sleep(exc.retry_after_ms / 1000.0)

    # -- endpoints -----------------------------------------------------
    def hello(self) -> dict[str, Any]:
        """The version/identity handshake (also run on connect)."""
        return self.request("hello")

    def place(self, vertex: int, neighbors: list[int] | None = None, *,
              retries: int = 0) -> dict[str, Any]:
        """Place one vertex; returns ``{vertex, pid, cached, ...}``.

        ``neighbors=None`` defers to the graph loaded in the server (the
        streaming arrival model); an explicit list supplies the local
        view directly.  Placing an already-placed vertex is idempotent
        and comes back with ``cached: true``.
        """
        fields: dict[str, Any] = {"vertex": vertex}
        if neighbors is not None:
            fields["neighbors"] = list(neighbors)
        return self._with_retries(retries, "place", **fields)

    def place_batch(self, items: list[Any], *,
                    retries: int = 0) -> list[dict[str, Any]]:
        """Place many vertices in one round trip.

        ``items`` entries are vertex ids or ``{"vertex": v,
        "neighbors": [...]}`` dicts; returns the per-item result list in
        request order.
        """
        response = self._with_retries(retries, "place_batch",
                                      items=items)
        return response["results"]

    def lookup(self, vertex: int) -> int | None:
        """Partition id of ``vertex``, or ``None`` when unplaced."""
        return self.request("lookup", vertex=vertex)["pid"]

    def stats(self) -> dict[str, Any]:
        """Live server counters, loads, and latency percentiles."""
        return self.request("stats")

    def snapshot(self) -> dict[str, Any]:
        """Force a durable snapshot now; returns its path + position."""
        return self.request("snapshot")

    def health(self) -> dict[str, Any]:
        """Liveness probe (never blocks on the engine queue)."""
        return self.request("health")

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._fh.close()
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
