"""Python client for the placement service.

Thin, dependency-free, and thread-safe: one TCP connection, one request
in flight at a time (a lock serializes callers — open several clients
for real concurrency).  On connect the client performs the ``hello``
handshake, so a protocol-version mismatch surfaces as a
:class:`ServiceError` immediately instead of as a confusing failure on
the first real request::

    import repro
    service = repro.serve(graph)
    with repro.connect(service) as client:
        pid = client.place(0)["pid"]
        assert client.lookup(0) == pid

Failure is a typed surface, not a hidden retry loop:

* a full engine queue raises :class:`BackpressureError`; an admission
  shed (revision 1.1's early load shedding) raises its subclass
  :class:`OverloadedError` — both carry the server's ``retry_after_ms``
  hint and both are retryable;
* a missed/unmeetable ``deadline_ms`` budget raises
  :class:`DeadlineExceededError`; a degraded server rejecting mutations
  raises :class:`ReadOnlyError` — neither is retried on a timer;
* ``place``/``place_batch`` accept ``retries=N`` to absorb retryable
  rejections through the repo-wide
  :class:`~repro.resilience.policy.RetryPolicy` (capped exponential
  backoff + full jitter, honoring ``retry_after_ms`` as the floor, with
  a total sleep budget).  Exhausting the budget raises
  :class:`~repro.resilience.policy.RetriesExhausted` carrying the last
  server error — the old behavior of re-raising the N-th raw
  backpressure frame survives only for ``retries=0`` (single attempt).
* an optional :class:`~repro.resilience.policy.CircuitBreaker`
  (``breaker=``) fails fast locally while the server is rejecting
  hard, returning capacity to the peer instead of paying round trips
  to re-learn the outage.
"""

from __future__ import annotations

import socket
import threading
from typing import Any

from ..resilience.policy import (
    CircuitBreaker,
    CircuitOpenError,
    RetriesExhausted,
    RetryPolicy,
)
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_line,
    encode_message,
)

__all__ = ["BackpressureError", "DeadlineExceededError", "OverloadedError",
           "ReadOnlyError", "RetriesExhausted", "ServiceClient",
           "ServiceError"]


class ServiceError(RuntimeError):
    """A request the server answered with ``ok: false``."""

    def __init__(self, code: str, message: str,
                 error: dict[str, Any] | None = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.error = error or {}


class BackpressureError(ServiceError):
    """The engine queue was full; retry after :attr:`retry_after_ms`."""

    @property
    def retry_after_ms(self) -> int:
        return int(self.error.get("retry_after_ms", 25))


class OverloadedError(BackpressureError):
    """Admission control shed the request before the queue filled.

    Subclasses :class:`BackpressureError` deliberately: both mean "the
    server is protecting itself, come back after ``retry_after_ms``",
    and every retry loop that absorbs backpressure should absorb
    watermark sheds the same way.
    """


class DeadlineExceededError(ServiceError):
    """The request's ``deadline_ms`` budget was (or could not be) met."""


class ReadOnlyError(ServiceError):
    """The server degraded to read-only serving; mutations are rejected.

    Not retryable on a timer — watch ``health()``'s ``health_state``
    for the recovery to ``healthy`` instead.
    """


_ERROR_TYPES: dict[str, type[ServiceError]] = {
    "backpressure": BackpressureError,
    "overloaded": OverloadedError,
    "deadline_exceeded": DeadlineExceededError,
    "read_only": ReadOnlyError,
}

#: Server answers that say "the peer is unhealthy/overloaded", the
#: signals a circuit breaker should count.  Client-side mistakes
#: (bad-request, unknown-vertex, ...) never trip the breaker.
_BREAKER_CODES = frozenset({"backpressure", "overloaded", "read_only",
                            "draining", "internal", "disconnected"})


class ServiceClient:
    """One connection to a :class:`~repro.service.PlacementService`.

    Parameters
    ----------
    host, port:
        The server address (``*service.address`` when in-process).
    timeout:
        Socket timeout for connect and each round trip.
    handshake:
        Run ``hello`` on connect (default) to surface version skew
        immediately.
    retry_policy:
        Template for per-call retry loops; per-call ``retries=N``
        overrides its attempt bound but inherits backoff shape and
        sleep budget.  Default: 25 ms base, 1 s cap, 30 s total budget.
    breaker:
        Optional circuit breaker consulted before every request and fed
        with every outcome.  While open, requests raise
        :class:`~repro.resilience.policy.CircuitOpenError` locally;
        retry loops treat that like backpressure (wait, then re-probe).
    deadline_ms:
        Default ``deadline_ms`` attached to every ``place``/
        ``place_batch`` (per-call values override; ``None`` sends no
        budget — the 1.0 best-effort behavior).
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0,
                 handshake: bool = True,
                 retry_policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 deadline_ms: float | None = None) -> None:
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._fh = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0
        self._closed = False
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy(max_attempts=0, base_backoff=0.025,
                             max_backoff=1.0, total_budget=30.0)
        self.breaker = breaker
        self.deadline_ms = deadline_ms
        #: The server's ``hello`` response (identity, config, graph).
        self.server_info: dict[str, Any] = {}
        if handshake:
            self.server_info = self.hello()

    # -- transport -----------------------------------------------------
    def request(self, op: str, **fields: Any) -> dict[str, Any]:
        """One round trip; returns the ``ok`` response body.

        Raises the :class:`ServiceError` subtype matching the failure
        code (see :data:`_ERROR_TYPES`) when the server answers a
        failure, and feeds the configured circuit breaker either way.
        """
        if self.breaker is not None:
            self.breaker.check()
        try:
            response = self._roundtrip(op, **fields)
        except ServiceError as exc:
            if self.breaker is not None and exc.code in _BREAKER_CODES:
                retry_after = None
                if isinstance(exc, BackpressureError):
                    retry_after = exc.retry_after_ms / 1000.0
                self.breaker.record_failure(retry_after=retry_after)
            raise
        if self.breaker is not None:
            self.breaker.record_success()
        return response

    def _roundtrip(self, op: str, **fields: Any) -> dict[str, Any]:
        with self._lock:
            if self._closed:
                raise ServiceError("closed", "client is closed")
            self._next_id += 1
            request_id = self._next_id
            message = {"protocol": PROTOCOL_VERSION, "op": op,
                       "id": request_id}
            message.update(fields)
            self._sock.sendall(encode_message(message))
            line = self._fh.readline(MAX_LINE_BYTES + 2)
        if not line:
            raise ServiceError(
                "disconnected", "server closed the connection")
        response = decode_line(line)
        if response.get("id") != request_id:
            raise ServiceError(
                "desync", f"response id {response.get('id')!r} does not "
                          f"match request id {request_id}")
        if not response.get("ok"):
            error = response.get("error") or {}
            code = error.get("code", "internal")
            cls = _ERROR_TYPES.get(code, ServiceError)
            raise cls(code, error.get("message", "request failed"),
                      error)
        return response

    @staticmethod
    def _retry_floor(exc: BaseException) -> float:
        """Minimum backoff for a caught retryable error (the server's
        own hint, when it gave one)."""
        if isinstance(exc, BackpressureError):
            return exc.retry_after_ms / 1000.0
        if isinstance(exc, CircuitOpenError):
            return exc.retry_after
        return 0.0

    def _with_retries(self, retries: int, op: str,
                      **fields: Any) -> dict[str, Any]:
        if retries <= 0:
            return self.request(op, **fields)
        template = self.retry_policy
        policy = RetryPolicy(
            max_attempts=retries,
            base_backoff=template.backoff.base,
            max_backoff=template.backoff.cap,
            total_budget=template.total_budget,
            jitter=template.backoff.jitter)
        return policy.call(
            lambda: self.request(op, **fields),
            retry_on=(BackpressureError, CircuitOpenError),
            floor_hint=self._retry_floor)

    # -- endpoints -----------------------------------------------------
    def hello(self) -> dict[str, Any]:
        """The version/identity handshake (also run on connect)."""
        return self.request("hello")

    def place(self, vertex: int, neighbors: list[int] | None = None, *,
              retries: int = 0,
              deadline_ms: float | None = None) -> dict[str, Any]:
        """Place one vertex; returns ``{vertex, pid, cached, ...}``.

        ``neighbors=None`` defers to the graph loaded in the server (the
        streaming arrival model); an explicit list supplies the local
        view directly.  Placing an already-placed vertex is idempotent
        and comes back with ``cached: true``.  ``deadline_ms`` attaches
        a latency budget the server may shed against (revision 1.1).
        """
        fields: dict[str, Any] = {"vertex": vertex}
        if neighbors is not None:
            fields["neighbors"] = list(neighbors)
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        if budget is not None:
            fields["deadline_ms"] = budget
        return self._with_retries(retries, "place", **fields)

    def place_batch(self, items: list[Any], *, retries: int = 0,
                    deadline_ms: float | None = None
                    ) -> list[dict[str, Any]]:
        """Place many vertices in one round trip.

        ``items`` entries are vertex ids or ``{"vertex": v,
        "neighbors": [...]}`` dicts; returns the per-item result list in
        request order.
        """
        fields: dict[str, Any] = {"items": items}
        budget = deadline_ms if deadline_ms is not None else self.deadline_ms
        if budget is not None:
            fields["deadline_ms"] = budget
        response = self._with_retries(retries, "place_batch", **fields)
        return response["results"]

    def lookup(self, vertex: int) -> int | None:
        """Partition id of ``vertex``, or ``None`` when unplaced."""
        return self.request("lookup", vertex=vertex)["pid"]

    def stats(self) -> dict[str, Any]:
        """Live server counters, loads, and latency percentiles."""
        return self.request("stats")

    def snapshot(self) -> dict[str, Any]:
        """Force a durable snapshot now; returns its path + position."""
        return self.request("snapshot")

    def health(self) -> dict[str, Any]:
        """Liveness probe (never blocks on the engine queue)."""
        return self.request("health")

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._fh.close()
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
