"""The long-lived placement server (partition-as-a-service).

:class:`PlacementService` turns the repo's batch machinery into an
online system: it loads a graph once (through the binary CSR cache when
given a path), holds a live partitioner + :class:`PartitionState`, and
answers the version-1 wire protocol (:mod:`repro.service.protocol`) over
TCP for as long as the process lives.

Architecture — one engine, many connections::

    client conns ──> bounded queue ──> engine thread ──> WAL ──> acks
        (parse,          (backpressure     (apply,      (fsync)
         validate)        when full)        coalesce)

* Every connection gets a reader thread that parses and validates
  requests.  Read-only ops (``hello``, ``health``, ``lookup``,
  ``stats``) are answered right there; mutating ops (``place``,
  ``place_batch``, ``snapshot``) are enqueued to the single engine
  thread, which is the only code that touches partitioner state — no
  state locks on the hot path, no torn placements.
* The queue is **bounded**: when it is full the connection answers
  ``code: "backpressure"`` with a ``retry_after_ms`` hint instead of
  buffering without limit.  Slow consumers shed load explicitly.
* The engine drains up to ``batch_max`` queued requests per wake-up and
  applies their placements as one group.  While arrivals are exactly
  id-contiguous (vertex ids ``0, 1, 2, …`` with no explicit neighbor
  overrides — the paper's streaming arrival model), the group runs
  through the partitioner's **fused vectorized kernel**
  (:meth:`StreamingPartitioner._run_fast`), the same code path the
  batch fast loop uses, so coalescing concurrent clients recovers batch
  throughput.  The first out-of-order or explicit-neighbor placement
  permanently downgrades to the record-at-a-time path: the kernel's
  maintained images cannot absorb out-of-band commits, and correctness
  beats speed.
* Durability is snapshot + WAL (:mod:`repro.service.wal`): the engine
  applies a group, appends it to the fsynced placement log, and only
  then acks.  Periodic snapshots (the recovery layer's
  :class:`~repro.recovery.checkpoint.Checkpointer`) bound replay time;
  the WAL rotates at each snapshot.  ``resume_from`` at boot restores
  the newest snapshot and replays the WAL tail **through the
  partitioner** (re-scoring each logged record and checking the choice
  matches the logged pid), so a SIGKILLed server comes back answering
  ``lookup`` identically for every placement it ever acknowledged.
* Graceful shutdown (:meth:`close`, wired to SIGTERM by the CLI) stops
  accepting work, drains the queue, writes a final snapshot, and closes
  connections — in that order.

Resilience (the :mod:`repro.resilience` layer, revision 1.1 of the
protocol):

* **Admission control** — an
  :class:`~repro.resilience.admission.AdmissionController` sheds
  ``place`` traffic with ``overloaded`` *before* the queue saturates
  (queue-depth watermark, engine-lag EWMA) and rejects requests whose
  ``deadline_ms`` budget is already unmeetable with
  ``deadline_exceeded``; the engine re-checks deadlines at dequeue so a
  budget that expired while queued fails instead of acking late.
* **Degraded modes** — a
  :class:`~repro.resilience.health.HealthMonitor` state machine
  (``healthy → degraded → read_only → draining``).  A WAL append
  failure no longer kills the engine: the group's entries are parked in
  ``_pending_entries``, the affected requests fail with ``read_only``
  (they were never acked, so durability is not violated), and the
  server keeps answering lookups/stats/health.  :meth:`try_recover`
  (optionally on a timer via ``recovery_probe_interval``) flushes the
  parked entries and returns to ``healthy``.  Repeated snapshot
  failures degrade the same way.  Every transition emits a
  ``health_transition`` trace record.

Multicore serving (revision 1.2 of the protocol):

* **Grouped scoring** — ``parallelism M > 1`` scores queued placements
  in M-record chunks against chunk-start state and commits them in
  arrival order, the exact discipline of
  :class:`~repro.parallel.executor.SimulatedParallelPartitioner` at
  ``use_rct=False``.  ``processes N > 1`` dispatches those same chunks
  to a :class:`~repro.parallel.process.ShardedScorePool` of worker
  processes over one shared-memory segment; because the chunker and
  the commit loop are shared, the sharded server is **byte-parity**
  (route table and WAL bytes) with the single-engine server at the
  same M.  Grouped WAL lines carry the scoring-group id so a restarted
  server replays groups under the discipline that produced them.
* **Lock-free reads** — ``lookup``/``stats``/``health`` are answered
  by connection threads against a seqlock-versioned
  :class:`_RouteReadView` published *after* each group's fsync and
  *before* its acks release, so a read can never observe a placement
  that was not durably acked, and never blocks on the engine.
* **Pipelined WAL** — a :class:`_WalCommitter` thread overlaps one
  group's fsync with the next group's scoring (double-buffered group
  commit).  Acks still release only after fsync; a failed append parks
  the entries and degrades to read-only exactly like the synchronous
  path, and the engine barriers the committer before snapshots,
  recovery, and shutdown.
"""

from __future__ import annotations

import copy
import queue
import socket
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any

import numpy as np

from .. import __version__
from ..graph.digraph import AdjacencyRecord, DiGraph
from ..graph.stream import ArrayStream
from ..partitioning.assignment import UNASSIGNED
from ..parallel.process import (
    ShardedScorePool,
    WorkerCrashedError,
    _StreamMeta,
)
from ..partitioning.base import StreamingPartitioner
from ..partitioning.config import PartitionConfig
from ..partitioning.registry import resolve
from ..recovery.checkpoint import (
    CheckpointConfig,
    Checkpointer,
    latest_snapshot,
)
from ..recovery.snapshot import read_snapshot
from ..resilience.admission import AdmissionController
from ..resilience.health import (
    DEGRADED,
    DRAINING,
    HEALTHY,
    READ_ONLY,
    HealthMonitor,
)
from .protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_REVISION,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    SUPPORTED_PROTOCOLS,
    ProtocolError,
    decode_line,
    encode_message,
    error_body,
)
from .wal import PlacementLog, WalEntry, replay_entries

__all__ = ["PlacementService"]

_SERVER_NAME = "repro-placement-service"

#: Engine-queue sentinel that tells the engine thread to exit after the
#: FIFO ahead of it has fully drained.
_STOP = object()


class _LatencyRecorder:
    """Per-endpoint latency reservoir feeding the ``stats`` endpoint."""

    def __init__(self, keep: int = 4096) -> None:
        self._lock = threading.Lock()
        self._keep = keep
        self._samples: dict[str, deque] = {}
        self._counts: dict[str, int] = {}
        self._errors: dict[str, int] = {}

    def observe(self, op: str, seconds: float, ok: bool) -> None:
        with self._lock:
            bucket = self._samples.get(op)
            if bucket is None:
                bucket = self._samples[op] = deque(maxlen=self._keep)
            bucket.append(seconds)
            self._counts[op] = self._counts.get(op, 0) + 1
            if not ok:
                self._errors[op] = self._errors.get(op, 0) + 1

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        # Nearest-rank percentile over the retained reservoir.
        idx = max(0, min(len(ordered) - 1,
                         int(-(-q * len(ordered) // 1)) - 1))
        return ordered[idx]

    def summary(self) -> dict[str, dict[str, Any]]:
        with self._lock:
            snapshot = {op: list(bucket)
                        for op, bucket in self._samples.items()}
            counts = dict(self._counts)
            errors = dict(self._errors)
        out: dict[str, dict[str, Any]] = {}
        for op, samples in snapshot.items():
            samples.sort()
            out[op] = {
                "count": counts.get(op, 0),
                "errors": errors.get(op, 0),
                "p50_ms": self._percentile(samples, 0.50) * 1e3,
                "p95_ms": self._percentile(samples, 0.95) * 1e3,
                "p99_ms": self._percentile(samples, 0.99) * 1e3,
                "max_ms": samples[-1] * 1e3,
            }
        return out


class _Work:
    """One queued engine task: placements, a snapshot, or a recovery."""

    __slots__ = ("kind", "placements", "event", "results", "error",
                 "deadline")

    def __init__(self, kind: str,
                 placements: list[tuple[int, list[int] | None]],
                 deadline: float | None = None) -> None:
        self.kind = kind
        self.placements = placements
        self.event = threading.Event()
        self.results: Any = None
        self.error: tuple[str, str] | None = None
        #: Absolute ``time.monotonic()`` deadline from the request's
        #: ``deadline_ms`` budget; the engine re-checks it at dequeue.
        self.deadline = deadline

    def resolve(self, results: Any) -> None:
        self.results = results
        self.event.set()

    def fail(self, code: str, message: str) -> None:
        self.error = (code, message)
        self.event.set()


class _RouteReadView:
    """Seqlock-versioned, acked-only snapshot of the route table.

    One writer at a time (serialized by the service's publish lock)
    bumps ``seq`` to odd, mutates, bumps back to even; readers retry
    while ``seq`` is odd or changed across their read.  Because the
    writer publishes only *after* a group's WAL fsync and *before* its
    acks release, a reader can never observe a placement that was not
    durably acknowledged — unlike the in-memory route table, which runs
    ahead of the log whenever a WAL append is in flight or has failed.

    ``hold_seconds`` is a test hook: a positive value makes the writer
    sleep inside the odd-``seq`` window so the reader retry path can be
    exercised deterministically.
    """

    def __init__(self, num_vertices: int, num_partitions: int) -> None:
        self.seq = 0  # even = stable; odd = write in progress
        self.route = np.full(num_vertices, UNASSIGNED, dtype=np.int32)
        self.loads = np.zeros(num_partitions, dtype=np.int64)
        self.edge_loads = np.zeros(num_partitions, dtype=np.int64)
        self.position = 0
        self.placements = 0
        self.overflows = 0
        self.retries = 0  # reader-side seqlock retries (approximate)
        self.hold_seconds = 0.0

    # -- writer side (publish lock held by the service) ----------------
    def publish(self, pairs, *, loads, edge_loads, position,
                placements, overflows) -> None:
        self.seq += 1
        if self.hold_seconds:
            time.sleep(self.hold_seconds)
        route = self.route
        for vertex, pid in pairs:
            route[vertex] = pid
        self.loads[:] = loads
        self.edge_loads[:] = edge_loads
        self.position = int(position)
        self.placements = int(placements)
        self.overflows = int(overflows)
        self.seq += 1

    def publish_full(self, route: np.ndarray, *, loads, edge_loads,
                     position, placements, overflows) -> None:
        """Wholesale publish (boot/resume, before any reader exists)."""
        self.seq += 1
        if self.hold_seconds:
            time.sleep(self.hold_seconds)
        np.copyto(self.route, route)
        self.loads[:] = loads
        self.edge_loads[:] = edge_loads
        self.position = int(position)
        self.placements = int(placements)
        self.overflows = int(overflows)
        self.seq += 1

    # -- reader side (any thread, no locks) ----------------------------
    def read_route(self, vertex: int) -> int:
        while True:
            s1 = self.seq
            if s1 & 1:
                self.retries += 1
                time.sleep(0)  # yield to the writer mid-publish
                continue
            pid = int(self.route[vertex])
            if self.seq == s1:
                return pid
            self.retries += 1

    def read_summary(self) -> dict[str, Any]:
        """Consistent scalar+load snapshot for the stats endpoint."""
        while True:
            s1 = self.seq
            if s1 & 1:
                self.retries += 1
                time.sleep(0)
                continue
            out = {
                "loads": [int(x) for x in self.loads],
                "edge_loads": [int(x) for x in self.edge_loads],
                "position": int(self.position),
                "placements": int(self.placements),
                "overflows": int(self.overflows),
            }
            if self.seq == s1:
                return out
            self.retries += 1


class _Commit:
    """One group's durability hand-off from the engine to the committer."""

    __slots__ = ("entries", "applied", "scalars", "requests")

    def __init__(self, entries, applied, scalars, requests) -> None:
        self.entries = entries
        self.applied = applied
        self.scalars = scalars
        #: Requests (works) riding this commit — the admission
        #: controller counts them as in-flight pipeline depth.
        self.requests = requests


class _WalCommitter:
    """Double-buffered group commit: fsync group N while N+1 scores.

    The engine applies a group in memory, captures the ack payloads and
    an acked-state scalar snapshot, and hands everything here; this
    thread appends + fsyncs the WAL, publishes the read view, and only
    then releases the acks.  The bounded queue (one committing + one
    queued) is the double buffer — a third group's ``submit`` blocks the
    engine, bounding how far in-memory state can run ahead of the log.

    A failed append parks the entries in the service's
    ``_pending_entries`` (in sequence order), fails the riding requests
    with ``read_only`` and degrades health — the synchronous path's
    behavior, moved off the scoring thread.  While broken, every later
    commit parks the same way so the log never gains a gap.
    """

    def __init__(self, service: "PlacementService") -> None:
        self._service = service
        self._queue: queue.Queue = queue.Queue(maxsize=2)
        self._inflight_lock = threading.Lock()
        self._inflight_requests = 0
        self.committed_groups = 0
        self.broken = False
        self._aborted = False
        self._thread = threading.Thread(target=self._loop,
                                        name="placement-wal-commit",
                                        daemon=True)
        self._thread.start()

    @property
    def inflight_requests(self) -> int:
        with self._inflight_lock:
            return self._inflight_requests

    def _add_inflight(self, n: int) -> None:
        with self._inflight_lock:
            self._inflight_requests += n

    def submit(self, commit: _Commit) -> None:
        """Engine-thread hand-off; blocks when two groups are in flight."""
        self._add_inflight(commit.requests)
        self._queue.put(commit)

    def barrier(self) -> None:
        """Block until every commit submitted so far is fully resolved.

        The engine calls this before snapshots (the WAL must cover the
        snapshot position before rotating), before recovery (pending
        entries must be complete), and during shutdown.
        """
        event = threading.Event()
        self._queue.put(event)
        while not event.wait(0.05):
            if not self._thread.is_alive():
                # Stopped (or died) with our marker unserved; nothing
                # can be in flight any more — the barrier holds.
                return

    def stop(self, timeout: float = 30.0) -> None:
        self._queue.put(_STOP)
        self._thread.join(timeout)

    def abort(self) -> None:
        """Crash-style teardown: drop in-flight commits unresolved.

        In-flight entries were never acked, so forgetting them is
        exactly what a SIGKILL would do — the chaos harness's crash
        teardown uses this to avoid fsyncing work a real crash would
        have lost.
        """
        self._aborted = True
        try:
            self._queue.put_nowait(_STOP)
        except queue.Full:
            pass
        self._thread.join(1.0)

    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if isinstance(item, threading.Event):
                item.set()
                continue
            if self._aborted:
                self._add_inflight(-item.requests)
                continue
            self._commit(item)
            self._add_inflight(-item.requests)

    def _commit(self, item: _Commit) -> None:
        service = self._service
        entries = item.entries
        if self.broken or service._pending_entries:
            # The log is already behind; appending around the gap would
            # corrupt the sequence.  Park in order, fail the riders.
            service._pending_entries.extend(entries)
            for work, _results in item.applied:
                work.fail(
                    "read_only",
                    "placement could not be made durable (log is "
                    "recovering); server is read-only until it flushes")
            return
        try:
            if service._wal is not None and entries:
                service._wal.append_batch(entries)
        except Exception as exc:
            self.broken = True
            service._pending_entries.extend(entries)
            service._health.transition(READ_ONLY, "wal_append_failed",
                                       detail=str(exc))
            for work, _results in item.applied:
                work.fail(
                    "read_only",
                    f"placement could not be made durable ({exc}); "
                    f"server is read-only until the log recovers")
            return
        service._publish_entries(entries, item.scalars)
        for work, results in item.applied:
            work.resolve(results)
        self.committed_groups += 1


def _resolve_graph(graph: Any) -> DiGraph:
    """Accept a ready graph or a path (loaded via the CSR cache)."""
    if isinstance(graph, DiGraph):
        return graph
    if isinstance(graph, (str, Path)):
        from ..ingest.cache import load_or_parse
        return load_or_parse(Path(graph), cache=True)
    raise TypeError(
        f"graph must be a DiGraph or a path, got {type(graph).__name__}")


def resolve_sharded_config(config: PartitionConfig,
                           processes: int) -> PartitionConfig:
    """Resolve ``gamma_store="auto"`` for process-sharded serving.

    The auto rule picks the sliding-window Γ store on large graphs, but
    the window's rotation cursor is inherently sequential — pool workers
    scoring against it would read stale shards.  ``"auto"`` means "pick
    something that works", so sharded serving resolves it to the dense
    store here; only an *explicit* ``gamma_store="window"`` request
    still fails the shared-lane check in ``__init__``.  The resolved
    config is what the server records (and what snapshots carry), so
    the bench reference partitioner and a later single-process resume
    score against the same store.
    """
    if processes > 1 and config.gamma_store in (None, "auto"):
        return config.replace(gamma_store="dense")
    return config


class PlacementService:
    """A live, restartable placement server over one loaded graph.

    Parameters
    ----------
    graph:
        A :class:`DiGraph` or a path to a graph file (loaded through the
        ``.reprocsr`` cache sidecar).
    config:
        The run's :class:`PartitionConfig` (default: ``PartitionConfig()``
        — SPNL, K=32).  Must name a *streaming* method.
    host, port:
        Bind address; port 0 picks a free port (read :attr:`address`).
    snapshot_dir:
        Durability directory for snapshots + the placement WAL.  ``None``
        runs volatile (no durability — acks do not survive a crash).
    resume_from:
        Snapshot directory (or single ``.snap`` file) of a previous run
        to warm-restart from; the WAL tail beside it is replayed so every
        previously-acked placement is answered identically.
    queue_depth:
        Bound on queued engine requests; beyond it, ``backpressure``.
    batch_max:
        Max queued requests coalesced into one engine step.
    snapshot_every:
        Placements between automatic snapshots (when durable).
    snapshot_keep:
        Snapshots retained by pruning.
    wal_fsync:
        ``False`` trades crash durability for latency (testing only).
    instrumentation:
        Optional :class:`~repro.observability.Instrumentation`; the
        engine emits one ``service_request`` trace record per processed
        group and the checkpointer its usual ``checkpoint`` records.
    throttle_seconds:
        Artificial per-group engine delay — a test hook for driving the
        backpressure path deterministically.
    shed_watermark:
        Queue-depth fraction past which admission control sheds
        ``place`` traffic with ``overloaded`` (``1.0`` disables early
        shedding; the full queue still answers ``backpressure``).
    max_lag_seconds:
        Expected-engine-wait ceiling for the admission controller's lag
        watermark (``None`` disables it).
    snapshot_failure_limit:
        Consecutive snapshot failures before the server drops from
        ``degraded`` to ``read_only``.
    recovery_probe_interval:
        Seconds between automatic :meth:`try_recover` probes while the
        server is ``read_only`` (``0`` disables the probe thread; the
        chaos harness drives recovery explicitly instead).
    wal_factory:
        Callable building the placement log
        (``factory(directory, start=, fsync=) -> PlacementLog``);
        injection point for the chaos harness's
        :class:`~repro.recovery.chaos.FlakyWAL`.
    parallelism:
        The paper's M — queued placements scored concurrently per
        chunk.  ``None`` picks 1 (the classic sequential engine, fused
        kernel intact) unless ``processes > 1``, where it defaults to
        ``16 * processes``.  Values > 1 switch the engine to grouped
        scoring (score an M-chunk against chunk-start state, commit in
        order) whether or not worker processes are attached, so the
        single-engine grouped server is the byte-parity reference for
        the sharded one.
    processes:
        Worker processes scoring each chunk
        (:class:`~repro.parallel.process.ShardedScorePool`); 1 scores
        in the engine thread.  ``> 1`` requires the heuristic to
        declare shared score lanes (dense/hashed Γ stores).
    wal_pipeline:
        Overlap each group's WAL fsync with the next group's scoring
        (default on when durable).  ``False`` forces the synchronous
        append-then-ack path.
    max_worker_restarts, worker_timeout:
        Worker-pool supervision budget (``processes > 1`` only).
    """

    def __init__(self, graph: Any, *, config: PartitionConfig | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 snapshot_dir: str | Path | None = None,
                 resume_from: str | Path | None = None,
                 queue_depth: int = 64, batch_max: int = 256,
                 snapshot_every: int = 100_000, snapshot_keep: int = 3,
                 wal_fsync: bool = True, instrumentation: Any = None,
                 throttle_seconds: float = 0.0,
                 retry_after_ms: int = 25,
                 shed_watermark: float = 0.85,
                 max_lag_seconds: float | None = None,
                 snapshot_failure_limit: int = 3,
                 recovery_probe_interval: float = 0.0,
                 wal_factory: Any = None,
                 parallelism: int | None = None,
                 processes: int = 1,
                 wal_pipeline: bool = True,
                 max_worker_restarts: int = 2,
                 worker_timeout: float = 120.0) -> None:
        if config is None:
            config = PartitionConfig()
        elif isinstance(config, dict):
            config = PartitionConfig.from_dict(config)
        config = resolve_sharded_config(config, processes)
        if not resolve(config.method).is_streaming:
            raise ValueError(
                f"the placement service needs a streaming method; "
                f"{config.method!r} is offline")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if processes < 1:
            raise ValueError("processes must be >= 1")
        if parallelism is None:
            parallelism = 16 * processes if processes > 1 else 1
        if parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if processes > 1 and parallelism < processes:
            raise ValueError(
                f"parallelism (M={parallelism}) must be >= processes "
                f"(N={processes}); each worker scores at least one "
                f"record per chunk")
        self._parallelism = int(parallelism)
        self._processes = int(processes)
        self.graph = _resolve_graph(graph)
        self.config = config
        self.instrumentation = instrumentation
        self.throttle_seconds = float(throttle_seconds)
        self.retry_after_ms = int(retry_after_ms)
        self._host = host
        self._port = port
        self._batch_max = batch_max
        self._queue: queue.Queue = queue.Queue(maxsize=queue_depth)
        self._latency = _LatencyRecorder()
        self._started_monotonic = time.monotonic()
        self._admission = AdmissionController(
            queue_depth, shed_watermark=shed_watermark,
            max_lag_seconds=max_lag_seconds)
        self._health = HealthMonitor(
            on_transition=self._emit_health_transition)
        if snapshot_failure_limit < 1:
            raise ValueError("snapshot_failure_limit must be >= 1")
        self._snapshot_failure_limit = snapshot_failure_limit
        self._snapshot_failures = 0
        self.recovery_probe_interval = float(recovery_probe_interval)
        self._wal_factory = wal_factory
        # WAL entries applied in memory but not yet durable (their
        # requests were *failed*, not acked); flushed by try_recover.
        self._pending_entries: list[WalEntry] = []
        self._deadline_expired = 0
        self._last_shed_total = 0

        partitioner = config.make()
        if not isinstance(partitioner, StreamingPartitioner):
            raise ValueError(
                f"{config.method!r} did not build a StreamingPartitioner")
        self.partitioner = partitioner
        # Pristine clone for pool workers, taken before _setup allocates
        # the per-run structures (each worker reruns _setup itself).
        self._worker_template = copy.deepcopy(partitioner) \
            if processes > 1 else None
        self._stream = ArrayStream.from_graph(self.graph)
        self._state_lock = threading.Lock()
        self._elapsed = 0.0  # cumulative engine apply time (snapshot PT)
        self._position = 0   # acked placements == WAL sequence head
        self._fused_placements = 0
        self._record_placements = 0
        self._fast_batches = 0
        self._groups_processed = 0
        self._kernel = None
        self._kernel_unavailable = False
        # Whether every placement so far arrived in exact id order (the
        # paper's streaming arrival model); bench parity checks read it.
        self._arrival_ordered = True
        self._next_expected = 0
        # Grouped-scoring bookkeeping (parallelism M > 1).  _chunk_seq
        # stamps WAL lines with a scoring-group id; _m_aligned tracks
        # whether the chunk sequence so far matches what an M-batch
        # executor over the same stream would have formed (bench parity
        # against SimulatedParallelPartitioner gates on it).
        self._chunk_seq = 0
        self._chunks_scored = 0
        self._pool_chunks = 0
        self._m_aligned = True
        self._m_tail_seen = False
        meta = _StreamMeta(self._stream)
        if meta.max_degree is not None:
            budget = min(meta.num_edges,
                         self._parallelism * meta.max_degree)
        else:
            budget = meta.num_edges
        # Mirrors the pool's ring_neighbors capacity formula so chunk
        # boundaries are identical with and without worker processes.
        self._chunk_budget = max(int(budget), 1)
        self._stream_meta = meta

        if resume_from is not None:
            self._resume(Path(resume_from))
        else:
            self._state = partitioner.make_state(self._stream)
            partitioner._setup(self._stream, self._state)
            self._fast_ok = True
            self._fast_cursor = 0
            self._resumed_from = None
        if self._parallelism > 1:
            # Grouped engines never use the fused kernel: every commit
            # goes through the score-then-commit chunk loop, so the
            # sharded and single-engine modes share one code path (and
            # one WAL shape).
            self._fast_ok = False
            self._kernel_unavailable = True

        # Worker pool (processes > 1): the canonical state moves into
        # the pool's shared segment so workers score against it live.
        self._pool: ShardedScorePool | None = None
        if processes > 1:
            lanes = partitioner.score_lanes()
            if lanes is None:
                raise ValueError(
                    f"{partitioner.name} does not declare shared score "
                    "lanes and cannot serve process-sharded (sliding-"
                    "window Γ stores are sequential by design; use "
                    "gamma_store='dense' or 'hashed')")
            pool = ShardedScorePool(
                self._worker_template, self._stream_meta, lanes,
                group_max=self._parallelism, num_workers=processes,
                use_rct=False,
                max_worker_restarts=max_worker_restarts,
                worker_timeout=worker_timeout,
                instrumentation=instrumentation)
            try:
                pool.bind_state(self._state, partitioner, lanes)
                pool.prewarm()
            except BaseException:
                pool.close()
                raise
            self._pool = pool
        self._pool_failed = False

        # Lock-free read path: connection threads answer lookup/stats
        # from this seqlock view, never from live engine state.
        self._read_view = _RouteReadView(self.graph.num_vertices,
                                         partitioner.num_partitions)
        self._publish_lock = threading.Lock()
        self._publish_state()

        # Durability: snapshots + WAL share snapshot_dir.  A fresh boot
        # into a directory holding a previous run's artifacts would
        # append conflicting sequence numbers — refuse instead.
        self._checkpointer = None
        self._wal = None
        self._last_snapshot_position = self._position
        if snapshot_dir is not None:
            snapshot_dir = Path(snapshot_dir)
            if resume_from is None and (
                    latest_snapshot(snapshot_dir) is not None
                    or any(snapshot_dir.glob("wal-*.jsonl"))):
                raise ValueError(
                    f"{snapshot_dir} holds a previous run's snapshots/WAL;"
                    f" pass resume_from= to warm-restart, or point "
                    f"snapshot_dir at a clean directory")
            self._checkpointer = Checkpointer(
                partitioner,
                CheckpointConfig(snapshot_dir, every=snapshot_every,
                                 keep=snapshot_keep),
                instrumentation=instrumentation)
            factory = self._wal_factory or PlacementLog
            self._wal = factory(snapshot_dir, start=self._position,
                                fsync=wal_fsync)
        self._wal_pipeline = bool(wal_pipeline)
        self._committer: _WalCommitter | None = None
        if self._wal is not None and self._wal_pipeline:
            self._committer = _WalCommitter(self)

        self._draining = threading.Event()
        self._shutdown_requested = threading.Event()
        self._closed = False
        self._close_lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._conns: set[socket.socket] = set()
        self._conn_lock = threading.Lock()

    # -- boot ----------------------------------------------------------
    @classmethod
    def start(cls, graph: Any, **kwargs: Any) -> "PlacementService":
        """Construct and begin serving; the one-call boot used by
        :func:`repro.serve`."""
        service = cls(graph, **kwargs)
        service.serve()
        return service

    def serve(self) -> None:
        """Bind the listener and start the accept + engine threads."""
        self._listener = socket.create_server(
            (self._host, self._port), reuse_port=False)
        self._listener.listen(64)
        engine = threading.Thread(target=self._engine_loop,
                                  name="placement-engine", daemon=True)
        acceptor = threading.Thread(target=self._accept_loop,
                                    name="placement-accept", daemon=True)
        self._threads += [engine, acceptor]
        engine.start()
        acceptor.start()
        if self.recovery_probe_interval > 0:
            prober = threading.Thread(target=self._recovery_probe_loop,
                                      name="placement-recovery-probe",
                                      daemon=True)
            self._threads.append(prober)
            prober.start()

    def _recovery_probe_loop(self) -> None:
        """Periodically attempt recovery while the server is read-only."""
        while not self._shutdown_requested.wait(
                self.recovery_probe_interval):
            if self._draining.is_set():
                return
            if self._health.state == READ_ONLY:
                self.try_recover()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — read this when booting on port 0."""
        if self._listener is None:
            raise RuntimeError("service is not serving yet")
        addr = self._listener.getsockname()
        return (addr[0], addr[1])

    # -- warm restart --------------------------------------------------
    def _resume(self, source: Path) -> None:
        """Restore the newest snapshot under ``source``, replay the WAL.

        Replay re-runs every logged placement through the partitioner's
        normal ``place`` path and checks the deterministic choice equals
        the logged pid — a mismatch means the log and code disagree and
        serving on would hand out wrong ``lookup`` answers.
        """
        directory = source if source.is_dir() else source.parent
        snapshot = source if source.is_file() else latest_snapshot(source)
        if snapshot is not None:
            payload = read_snapshot(snapshot)
            self._state = self.partitioner.load_state(self._stream, payload)
            self._position = int(payload["position"])
            self._elapsed = float(payload.get("elapsed_seconds", 0.0))
        else:
            self._state = self.partitioner.make_state(self._stream)
            self.partitioner._setup(self._stream, self._state)
            self._position = 0
        replayed = 0
        group_buf: list[tuple[WalEntry, AdjacencyRecord]] = []
        last_gid = -1

        def flush_group() -> None:
            # Grouped entries replay under the discipline that produced
            # them: score the whole group against group-start state,
            # then choose/verify/commit in logged order.
            if not group_buf:
                return
            scored = [(entry, record,
                       self.partitioner._score(record, self._state))
                      for entry, record in group_buf]
            for entry, record, scores in scored:
                pid = int(self.partitioner.choose(scores, self._state))
                if pid != entry.pid:
                    raise ValueError(
                        f"WAL replay diverged at seq {entry.seq}: vertex "
                        f"{entry.vertex} re-places to {pid}, log says "
                        f"{entry.pid}")
                self._state.commit(record, pid)
                self.partitioner._after_commit(record, pid, self._state)
            self._note_chunk(len(group_buf))
            group_buf.clear()

        for entry in replay_entries(directory,
                                    from_position=self._position):
            if entry.neighbors is None:
                neighbors = self.graph.out_neighbors(entry.vertex)
            else:
                neighbors = np.asarray(entry.neighbors, dtype=np.int64)
            record = AdjacencyRecord(entry.vertex, neighbors)
            if entry.group is None:
                flush_group()
                pid = self.partitioner.place(record, self._state)
                if pid != entry.pid:
                    raise ValueError(
                        f"WAL replay diverged at seq {entry.seq}: vertex "
                        f"{entry.vertex} re-places to {pid}, log says "
                        f"{entry.pid}")
            else:
                if group_buf and entry.group != last_gid:
                    flush_group()
                last_gid = max(last_gid, int(entry.group))
                group_buf.append((entry, record))
            self._position += 1
            replayed += 1
        flush_group()
        if last_gid >= 0:
            # Resume group ids past the log's highest so a re-replay
            # after the next crash never merges pre- and post-restart
            # entries into one scoring group.
            self._chunk_seq = last_gid + 1
        # The fused kernel is only valid if history was exactly the
        # id-ordered prefix (every placement so far is vertex 0..p-1).
        route = self._state.route
        p = self._position
        self._fast_ok = (int(self._state.placed_vertices) == p
                         and bool((route[:p] != UNASSIGNED).all()))
        self._fast_cursor = p if self._fast_ok else 0
        self._arrival_ordered = self._fast_ok
        self._next_expected = p if self._fast_ok else 0
        self._resumed_from = str(snapshot) if snapshot is not None \
            else str(directory)
        if self.instrumentation is not None and snapshot is not None:
            self.instrumentation.count("resumes")
            self.instrumentation.emit({
                "type": "resume",
                "position": int(self._position),
                "placements": int(self._state.placed_vertices),
                "path": str(snapshot),
                "partitioner": self.partitioner.name,
            })
        self._replayed = replayed

    # -- engine --------------------------------------------------------
    def _ensure_kernel(self) -> bool:
        if self._kernel is None and not self._kernel_unavailable:
            self._kernel = self.partitioner._fast_kernel(
                self._state, self._stream)
            if self._kernel is None:
                self._kernel_unavailable = True
        return self._kernel is not None

    def _engine_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            group = [item]
            while len(group) < self._batch_max:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._process_group_safely(group)
                    group = []
                    break
                group.append(nxt)
            else:
                self._process_group_safely(group)
                continue
            if not group:  # saw _STOP mid-drain
                break
            self._process_group_safely(group)
        # Anything enqueued after the sentinel never runs; fail it
        # explicitly so no connection blocks forever.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is not _STOP:
                leftover.fail("draining",
                              "server is draining; placement not applied")

    def _process_group_safely(self, group: list[_Work]) -> None:
        """Run one group; an unexpected engine error degrades, not dies.

        :meth:`_process_group` handles every *anticipated* failure
        (WAL, snapshot, per-placement errors) itself; anything that
        still escapes would previously kill the engine thread silently,
        stranding every connection.  Instead: fail the group's
        unresolved works, drop to ``read_only``, keep serving reads.
        """
        try:
            self._process_group(group)
        except Exception as exc:  # pragma: no cover - defensive
            for work in group:
                if not work.event.is_set():
                    work.fail("internal", f"engine error: {exc}")
            self._health.transition(READ_ONLY, "engine_error",
                                    detail=repr(exc))

    def _process_group(self, group: list[_Work]) -> None:
        """Apply one drained group: coalesce, group-commit, then ack.

        Place requests in the group are stable-sorted by their first
        vertex id before applying.  Commit order within a group is the
        server's to choose (nothing has been acked yet), and sorting
        repairs the id-order inversions that concurrent clients
        naturally produce — which is what lets a multi-client id-ordered
        workload keep riding the fused kernel.  All WAL lines for the
        group go down in one fsync (group commit); acks release after.
        """
        t0 = time.perf_counter()
        if self.throttle_seconds:
            time.sleep(self.throttle_seconds)
        fused_before = self._fused_placements
        place_works = [w for w in group if w.kind == "place"]
        other_works = [w for w in group if w.kind != "place"]
        place_works.sort(
            key=lambda w: w.placements[0][0] if w.placements else -1)
        now = time.monotonic()
        with self._state_lock:
            if self._parallelism > 1:
                applied, entries, placements, ok = \
                    self._apply_group_grouped(place_works, now)
            else:
                applied, entries, placements, ok = \
                    self._apply_group_sequential(place_works, now)
            if self._committer is not None:
                # Pipelined commit: hand the fsync to the committer and
                # return to scoring; it publishes the read view and
                # releases (or parks) the acks once the bytes are down.
                if applied or entries:
                    self._committer.submit(_Commit(
                        entries, applied, self._ack_scalars(),
                        len(applied)))
            else:
                wal_error: Exception | None = None
                if self._wal is not None and entries:
                    try:
                        self._wal.append_batch(entries)
                    except Exception as exc:
                        wal_error = exc
                        self._pending_entries.extend(entries)
                        self._health.transition(
                            READ_ONLY, "wal_append_failed",
                            detail=str(exc))
                if wal_error is None:
                    if entries:
                        self._publish_entries(entries,
                                              self._ack_scalars())
                    for work, results in applied:
                        work.resolve(results)
                else:
                    # The placements are applied in memory but NOT
                    # durable.  The ack contract (acked == fsynced)
                    # forbids resolving them; the entries wait in
                    # _pending_entries and flush before the server
                    # accepts mutations again, so a later idempotent
                    # retry's cached ack is backed by the log.  The
                    # read view is not published either — readers must
                    # never see a placement that was not acked.
                    ok = False
                    for work, _results in applied:
                        work.fail(
                            "read_only",
                            f"placement could not be made durable "
                            f"({wal_error}); server is read-only until "
                            f"the log recovers")
            for work in other_works:
                if work.kind == "recover":
                    try:
                        work.resolve(self._attempt_recovery())
                    except Exception as exc:
                        ok = False
                        work.fail("read_only", f"recovery failed: {exc}")
                    continue
                try:
                    work.resolve(self._snapshot_now())
                    self._note_snapshot_success()
                except ProtocolError as exc:
                    ok = False
                    work.fail(exc.code, str(exc))
                except Exception as exc:
                    ok = False
                    self._note_snapshot_failure(exc)
                    work.fail("internal", f"snapshot failed: {exc}")
            if (self._checkpointer is not None
                    and self._health.allows_mutation
                    and self._position - self._last_snapshot_position
                    >= self._checkpointer.config.every):
                try:
                    self._snapshot_now()
                    self._note_snapshot_success()
                except Exception as exc:
                    self._note_snapshot_failure(exc)
        elapsed = time.perf_counter() - t0
        if placements:
            self._admission.observe_group(elapsed, placements)
        self._groups_processed += 1
        if self.instrumentation is not None:
            shed_total = self._admission.stats()["shed_total"]
            shed_delta = shed_total - self._last_shed_total
            self._last_shed_total = shed_total
            self.instrumentation.emit({
                "type": "service_request",
                "op": "place" if placements else group[0].kind,
                "count": int(placements),
                "queue_depth": int(self._queue.qsize()),
                "elapsed_seconds": elapsed,
                "ok": ok,
                "fused": int(self._fused_placements - fused_before),
                "shed": int(shed_delta),
            })

    def _apply_group_sequential(
            self, place_works: list[_Work], now: float
    ) -> tuple[list[tuple[_Work, list[dict[str, Any]]]],
               list[WalEntry], int, bool]:
        """The classic M=1 apply loop: one work at a time, in order."""
        applied: list[tuple[_Work, list[dict[str, Any]]]] = []
        entries: list[WalEntry] = []
        placements = 0
        ok = True
        for work in place_works:
            if work.deadline is not None and now >= work.deadline:
                # The budget died in the queue; applying now would
                # ack after the client stopped caring.  Fail without
                # touching state — nothing to roll back.
                ok = False
                self._deadline_expired += 1
                work.fail("deadline_exceeded",
                          "deadline budget expired while the request "
                          "was queued; placement not applied")
                continue
            if not self._health.allows_mutation:
                # Degraded after this work was admitted: refuse
                # rather than pile more non-durable state on top.
                ok = False
                work.fail("read_only",
                          f"server went {self._health.state} while "
                          f"the request was queued; placement not "
                          f"applied")
                continue
            placements += len(work.placements)
            try:
                results, work_entries = self._apply_placements(
                    work.placements)
            except Exception as exc:
                ok = False
                work.fail("internal", f"placement failed: {exc}")
                continue
            entries.extend(work_entries)
            applied.append((work, results))
        return applied, entries, placements, ok

    def _apply_group_grouped(
            self, place_works: list[_Work], now: float
    ) -> tuple[list[tuple[_Work, list[dict[str, Any]]]],
               list[WalEntry], int, bool]:
        """Score-then-commit the drained group in M-record chunks.

        Every live placement in the group flows through one shared
        chunker: flush at M records, or earlier when the next record
        would blow the flat-neighbor budget (mirroring the worker
        ring's capacity so chunk boundaries are identical with and
        without a pool).  Each chunk is scored whole against
        chunk-start state and committed in arrival order — the
        :class:`~repro.parallel.executor.SimulatedParallelPartitioner`
        discipline at ``use_rct=False``.  A work's results assemble
        across chunks; it acks only when every one of its placements
        committed.
        """
        applied: list[tuple[_Work, list[dict[str, Any]]]] = []
        entries: list[WalEntry] = []
        placements = 0
        ok = True
        live: list[_Work] = []
        for work in place_works:
            if work.deadline is not None and now >= work.deadline:
                ok = False
                self._deadline_expired += 1
                work.fail("deadline_exceeded",
                          "deadline budget expired while the request "
                          "was queued; placement not applied")
                continue
            if not self._health.allows_mutation:
                ok = False
                work.fail("read_only",
                          f"server went {self._health.state} while "
                          f"the request was queued; placement not "
                          f"applied")
                continue
            placements += len(work.placements)
            live.append(work)
        if not live:
            return applied, entries, placements, ok
        results_by_work: list[list[dict[str, Any] | None]] = \
            [[None] * len(w.placements) for w in live]
        state = self._state
        route = state.route
        chunk: list[tuple[int, int, AdjacencyRecord,
                          list[int] | None]] = []
        chunk_edges = 0
        t0 = time.perf_counter()
        error: Exception | None = None
        try:
            for wi, work in enumerate(live):
                for si, (vertex, neighbors) in enumerate(work.placements):
                    if route[vertex] != UNASSIGNED:
                        # Already committed before this chunk formed —
                        # idempotent cached answer, no WAL line.
                        results_by_work[wi][si] = {
                            "vertex": vertex, "pid": int(route[vertex]),
                            "cached": True}
                        continue
                    if neighbors is None:
                        nbrs = self.graph.out_neighbors(vertex)
                        logged = None
                    else:
                        nbrs = np.asarray(neighbors, dtype=np.int64)
                        logged = [int(u) for u in neighbors]
                    degree = int(len(nbrs))
                    if chunk and chunk_edges + degree > self._chunk_budget:
                        self._commit_chunk(chunk, chunk_edges,
                                           results_by_work, entries)
                        chunk, chunk_edges = [], 0
                    chunk.append((wi, si,
                                  AdjacencyRecord(vertex, nbrs), logged))
                    chunk_edges += degree
                    if len(chunk) >= self._parallelism:
                        self._commit_chunk(chunk, chunk_edges,
                                           results_by_work, entries)
                        chunk, chunk_edges = [], 0
            if chunk:
                self._commit_chunk(chunk, chunk_edges,
                                   results_by_work, entries)
        except WorkerCrashedError as exc:
            # The pool is unusable until recovery resets it; committed
            # chunks stay committed (their entries are in ``entries``
            # and must reach the log), the rest of the group fails.
            error = exc
            self._pool_failed = True
            self._health.transition(READ_ONLY, "worker_pool_failed",
                                    detail=str(exc))
        except Exception as exc:
            error = exc
        self._elapsed += time.perf_counter() - t0
        for wi, work in enumerate(live):
            results = results_by_work[wi]
            if all(r is not None for r in results):
                applied.append((work, results))
            else:
                ok = False
                work.fail("internal", f"placement failed: {error}")
        return applied, entries, placements, ok

    def _commit_chunk(self, chunk, chunk_edges: int, results_by_work,
                      entries: list[WalEntry]) -> None:
        """Score one chunk against chunk-start state, commit in order."""
        gid = self._chunk_seq
        self._chunk_seq += 1
        self._note_chunk(len(chunk))
        base = self.partitioner
        state = self._state
        records = [record for _, _, record, _ in chunk]
        pool = self._pool
        if pool is not None and not self._pool_failed \
                and chunk_edges <= pool.neighbor_capacity:
            scores_block: Any = pool.score_group(records)
            self._pool_chunks += 1
        else:
            # No pool, pool down, or an oversize explicit-neighbor
            # chunk that cannot fit a ring slot: score in the engine.
            # Scoring is pure, so byte-parity is unaffected.
            scores_block = [base._score(record, state)
                            for record in records]
        route = state.route
        for i, (wi, si, record, logged) in enumerate(chunk):
            vertex = record.vertex
            if route[vertex] != UNASSIGNED:
                # Duplicate within the chunk: an earlier occurrence
                # just committed; answer cached, drop the stale score.
                results_by_work[wi][si] = {
                    "vertex": vertex, "pid": int(route[vertex]),
                    "cached": True}
                continue
            pid = int(base.choose(scores_block[i], state))
            state.commit(record, pid)
            base._after_commit(record, pid, state)
            results_by_work[wi][si] = {"vertex": vertex, "pid": pid,
                                       "cached": False}
            entries.append(WalEntry(self._position, vertex, logged, pid,
                                    group=gid))
            self._position += 1
            self._record_placements += 1
            if self._arrival_ordered:
                if vertex == self._next_expected:
                    self._next_expected += 1
                else:
                    self._arrival_ordered = False

    def _note_chunk(self, size: int) -> None:
        """Track whether chunking still matches exact M-batching.

        :class:`~repro.parallel.executor.SimulatedParallelPartitioner`
        forms batches of exactly M records (one short tail at stream
        end).  The service's chunks depend on arrival timing, so parity
        checks (loadgen ``--verify``) gate on this flag: any chunk after
        a short one means the sequences diverged.
        """
        self._chunks_scored += 1
        if self._m_tail_seen:
            self._m_aligned = False
        if size < self._parallelism:
            self._m_tail_seen = True

    def _ack_scalars(self) -> dict[str, Any]:
        """Copy the acked-state scalars for a read-view publish.

        Taken under the state lock at commit-capture time; copies, not
        views — with a pool bound, the live arrays are shared-memory
        views that keep mutating while a pipelined commit is in flight.
        """
        state = self._state
        return {
            "loads": np.array(state.vertex_counts),
            "edge_loads": np.array(state.edge_counts),
            "position": int(self._position),
            "placements": int(state.placed_vertices),
            "overflows": int(state.capacity_overflows),
        }

    def _publish_entries(self, entries: list[WalEntry],
                         scalars: dict[str, Any]) -> None:
        """Publish one durable group to the read view (post-fsync,
        pre-ack).  Engine thread on the synchronous path, committer
        thread on the pipelined one; the publish lock serializes them.
        """
        with self._publish_lock:
            self._read_view.publish(
                [(e.vertex, e.pid) for e in entries], **scalars)

    def _publish_state(self) -> None:
        """Wholesale read-view publish from live state (boot/recovery)."""
        state = self._state
        with self._publish_lock:
            self._read_view.publish_full(
                state.route,
                loads=state.vertex_counts,
                edge_loads=state.edge_counts,
                position=self._position,
                placements=state.placed_vertices,
                overflows=state.capacity_overflows)

    def _sync_committer(self) -> None:
        """Barrier the pipelined committer (no-op when synchronous)."""
        if self._committer is not None:
            self._committer.barrier()

    def _teardown_pool(self) -> None:
        """Release the worker pool; rebind state to private copies first
        so post-close introspection (stats, parity checks) still works.
        """
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        try:
            pool.detach_state(self._state, self.partitioner)
        except Exception:
            pass
        pool.close()

    def _apply_placements(
            self, placements: list[tuple[int, list[int] | None]]
    ) -> tuple[list[dict[str, Any]], list[WalEntry]]:
        """Apply one request's placements; returns (results, WAL entries).

        Idempotent: an already-placed vertex answers its existing pid
        with ``cached: true`` and writes no WAL line.  Runs of
        id-contiguous, graph-adjacency placements go through the fused
        kernel; anything else takes the record path and permanently
        retires the kernel (its maintained images cannot see out-of-band
        commits).
        """
        state = self._state
        route = state.route
        results: list[dict[str, Any]] = []
        entries: list[WalEntry] = []
        n = len(placements)
        i = 0
        while i < n:
            vertex, neighbors = placements[i]
            if route[vertex] != UNASSIGNED:
                results.append({"vertex": vertex,
                                "pid": int(route[vertex]),
                                "cached": True})
                i += 1
                continue
            if (self._fast_ok and neighbors is None
                    and vertex == self._fast_cursor):
                stop = vertex
                j = i
                while j < n:
                    vj, nj = placements[j]
                    if (nj is not None or vj != stop
                            or route[vj] != UNASSIGNED):
                        break
                    stop += 1
                    j += 1
                if stop > vertex and self._ensure_kernel():
                    self._elapsed += self.partitioner._run_fast(
                        self._stream, state, self._kernel,
                        start=vertex, stop=stop)
                    self._fast_cursor = stop
                    self._next_expected = stop
                    self._fast_batches += 1
                    for v in range(vertex, stop):
                        pid = int(route[v])
                        results.append({"vertex": v, "pid": pid,
                                        "cached": False})
                        entries.append(WalEntry(self._position, v, None,
                                                pid))
                        self._position += 1
                        self._fused_placements += 1
                    i = j
                    continue
            # Record path: one placement at a time, kernel retired.
            self._fast_ok = False
            if neighbors is None:
                nbrs = self.graph.out_neighbors(vertex)
                logged = None
            else:
                nbrs = np.asarray(neighbors, dtype=np.int64)
                logged = [int(u) for u in neighbors]
            t0 = time.perf_counter()
            pid = self.partitioner.place(
                AdjacencyRecord(vertex, nbrs), state)
            self._elapsed += time.perf_counter() - t0
            results.append({"vertex": vertex, "pid": int(pid),
                            "cached": False})
            entries.append(WalEntry(self._position, vertex, logged,
                                    int(pid)))
            self._position += 1
            self._record_placements += 1
            if self._arrival_ordered:
                if vertex == self._next_expected:
                    self._next_expected += 1
                else:
                    self._arrival_ordered = False
            i += 1
        return results, entries

    def _snapshot_now(self) -> dict[str, Any]:
        """Write a snapshot + rotate/prune the WAL (engine thread only)."""
        if self._checkpointer is None:
            raise ProtocolError(
                "server is running without a snapshot_dir; nothing to "
                "snapshot")
        # Pipelined commits must land before the rotation: a snapshot at
        # position P with un-fsynced lines below P still in flight would
        # strand those lines in the *new* segment, breaking prune/replay.
        self._sync_committer()
        path = self._checkpointer.save(self._state, self._position,
                                       self._elapsed)
        self._last_snapshot_position = self._position
        if self._wal is not None:
            self._wal.rotate(self._position)
            self._wal.prune(self._position)
        return {"path": str(path), "position": int(self._position)}

    # -- degraded modes + recovery -------------------------------------
    @property
    def health_state(self) -> str:
        """Current health-machine state (``healthy``/``degraded``/
        ``read_only``/``draining``)."""
        return self._health.state

    def health_history(self) -> list[dict[str, Any]]:
        """Bounded history of health transitions (newest last)."""
        return self._health.snapshot()["history"]

    def _emit_health_transition(self, record: dict[str, Any]) -> None:
        if self.instrumentation is not None:
            self.instrumentation.emit({
                "type": "health_transition",
                "from_state": record["from_state"],
                "to_state": record["to_state"],
                "reason": record["reason"],
            })

    def _note_snapshot_success(self) -> None:
        self._snapshot_failures = 0
        if self._health.state == DEGRADED:
            self._health.transition(HEALTHY, "snapshot_recovered")

    def _note_snapshot_failure(self, exc: Exception) -> None:
        self._snapshot_failures += 1
        if self._snapshot_failures >= self._snapshot_failure_limit:
            self._health.transition(
                READ_ONLY, "snapshot_failure_limit",
                detail=f"{self._snapshot_failures} consecutive snapshot "
                       f"failures: {exc}")
        else:
            self._health.transition(DEGRADED, "snapshot_failed",
                                    detail=str(exc))

    def _attempt_recovery(self) -> dict[str, Any]:
        """Engine-thread half of :meth:`try_recover` (under state lock).

        Flush the non-durable pending entries first: until they are on
        disk, the in-memory route table is ahead of the log and a crash
        would break ``resume_from`` parity for any later ack.  Only a
        complete flush earns the transition back to ``healthy``.
        """
        self._sync_committer()
        flushed = 0
        if self._wal is not None and self._pending_entries:
            self._wal.append_batch(list(self._pending_entries))
            flushed = len(self._pending_entries)
            self._pending_entries.clear()
        if self._pool is not None and self._pool_failed:
            # Surviving workers may hold stale dispatches from the group
            # that crashed; tear the pool down and respawn fresh.
            self._pool.reset()
            self._pool_failed = False
        if self._committer is not None:
            self._committer.broken = False
        self._snapshot_failures = 0
        self._health.transition(HEALTHY, "recovered")
        # The flushed entries are durable now; let readers see them.
        self._publish_state()
        return {"recovered": self._health.state == HEALTHY,
                "flushed": flushed,
                "health_state": self._health.state}

    def try_recover(self) -> dict[str, Any]:
        """Attempt to leave a degraded state; never raises.

        Enqueues a recovery task for the engine thread (the only code
        allowed to touch the WAL), which flushes any pending entries
        and transitions back to ``healthy``.  Returns
        ``{"recovered": bool, "flushed": int, "health_state": str}``,
        with an ``"error"`` key when the underlying fault persists.
        Safe to call at any time — recovering a healthy server is a
        cheap no-op.  Also run on a timer when the server was built
        with ``recovery_probe_interval > 0``.
        """
        work = _Work("recover", [])
        try:
            self._submit(work)
        except ProtocolError as exc:
            return {"recovered": False, "flushed": 0,
                    "health_state": self._health.state,
                    "error": str(exc)}
        work.event.wait()
        if work.error is not None:
            return {"recovered": False, "flushed": 0,
                    "health_state": self._health.state,
                    "error": work.error[1]}
        return work.results

    # -- connections ---------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            with self._conn_lock:
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="placement-conn", daemon=True)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            fh = conn.makefile("rb")
            while True:
                line = fh.readline(MAX_LINE_BYTES + 2)
                if not line:
                    return
                t0 = time.perf_counter()
                op, response = self._handle_line(line)
                try:
                    conn.sendall(encode_message(response))
                finally:
                    self._latency.observe(
                        op, time.perf_counter() - t0,
                        bool(response.get("ok")))
        except (OSError, ValueError):
            return  # peer vanished or socket closed under us
        finally:
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _handle_line(self, line: bytes) -> tuple[str, dict[str, Any]]:
        request_id: Any = None
        op = "invalid"
        try:
            request = decode_line(line)
            request_id = request.get("id")
            version = request.get("protocol")
            if version not in SUPPORTED_PROTOCOLS:
                raise ProtocolError(
                    f"unsupported protocol version {version!r}",
                    code="unsupported-protocol")
            op_field = request.get("op")
            if not isinstance(op_field, str) or op_field not in OPS:
                raise ProtocolError(
                    f"unknown op {op_field!r}; this server answers "
                    f"{list(OPS)}")
            op = op_field
            body = self._dispatch(op, request)
        except ProtocolError as exc:
            error = error_body(exc.code, str(exc))
            if exc.code == "unsupported-protocol":
                error["supported"] = list(SUPPORTED_PROTOCOLS)
            elif exc.code in RETRYABLE_CODES:
                error["retry_after_ms"] = self.retry_after_ms
            return op, {"id": request_id, "ok": False, "error": error}
        except Exception as exc:  # pragma: no cover - defensive
            return op, {"id": request_id, "ok": False,
                        "error": error_body("internal", repr(exc))}
        body["id"] = request_id
        body["ok"] = True
        return op, body

    def _dispatch(self, op: str,
                  request: dict[str, Any]) -> dict[str, Any]:
        if op == "hello":
            return self._op_hello()
        if op == "health":
            return self._op_health()
        if op == "lookup":
            return self._op_lookup(request)
        if op == "stats":
            return self._op_stats()
        if op == "place":
            item = dict(request)
            item.setdefault("vertex", None)
            [result] = self._op_place([item],
                                      deadline=self._parse_deadline(request))
            return result
        if op == "place_batch":
            items = request.get("items")
            if not isinstance(items, list) or not items:
                raise ProtocolError(
                    "place_batch needs a non-empty 'items' list")
            results = self._op_place(items,
                                     deadline=self._parse_deadline(request))
            return {"results": results, "count": len(results)}
        if op == "snapshot":
            return self._op_snapshot()
        raise ProtocolError(f"unknown op {op!r}")  # pragma: no cover

    # -- endpoint implementations --------------------------------------
    def _op_hello(self) -> dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "revision": PROTOCOL_REVISION,
            "supported": list(SUPPORTED_PROTOCOLS),
            "server": _SERVER_NAME,
            "version": __version__,
            "ops": list(OPS),
            "partitioner": self.partitioner.name,
            "config": self.config.to_dict(),
            "graph": {
                "name": self.graph.name,
                "num_vertices": int(self.graph.num_vertices),
                "num_edges": int(self.graph.num_edges),
            },
            "durable": self._checkpointer is not None,
        }

    def _op_health(self) -> dict[str, Any]:
        status = "draining" if self._draining.is_set() else "serving"
        admission = self._admission.stats()
        return {"status": status,
                "health_state": self._health.state,
                "health_transitions": int(self._health.transitions),
                "queue_depth": int(self._queue.qsize()),
                "shed_rate": float(admission["shed_rate"]),
                "uptime_seconds":
                    time.monotonic() - self._started_monotonic}

    def _op_lookup(self, request: dict[str, Any]) -> dict[str, Any]:
        vertex = self._check_vertex(request.get("vertex"))
        # Seqlock read view, never live engine state: the view only
        # ever holds placements whose group is fsynced and acked (or
        # durably flushed by recovery), so a lookup can never leak a
        # placement the client was not promised — and never blocks on
        # the engine.
        pid = self._read_view.read_route(vertex)
        return {"vertex": vertex,
                "pid": None if pid == UNASSIGNED else pid}

    def stats(self) -> dict[str, Any]:
        """The ``stats`` endpoint body, callable in-process (no socket).

        The CLI's drain summary and embedding tests use this; remote
        clients get the identical dict through ``client.stats()``.
        """
        return self._op_stats()

    def _op_stats(self) -> dict[str, Any]:
        # Lock-free: the seqlock view gives a consistent acked snapshot
        # of the mutable numbers; everything else is either immutable
        # (capacity, names) or monotonic counters safe to read racily.
        view = self._read_view
        summary = view.read_summary()
        state = self._state
        stats: dict[str, Any] = {
            "partitioner": self.partitioner.name,
            "num_partitions": int(state.num_partitions),
            "position": summary["position"],
            "placements": summary["placements"],
            "capacity_overflows": summary["overflows"],
            "capacity": float(state.capacity),
            "loads": summary["loads"],
            "edge_loads": summary["edge_loads"],
            "queue_depth": int(self._queue.qsize()),
            "queue_capacity": int(self._queue.maxsize),
            "groups_processed": int(self._groups_processed),
            "engine_seconds": float(self._elapsed),
            "uptime_seconds":
                time.monotonic() - self._started_monotonic,
            "arrival_ordered": bool(self._arrival_ordered),
            "fast_path": {
                "active": bool(self._fast_ok),
                "cursor": int(self._fast_cursor),
                "fused_placements": int(self._fused_placements),
                "record_placements": int(self._record_placements),
                "fast_batches": int(self._fast_batches),
            },
            "latency": self._latency.summary(),
            "health": self._health.snapshot(),
            "admission": self._admission.stats(),
            "deadline_expired_in_queue": int(self._deadline_expired),
            # Additive in revision 1.2: multicore-engine shape + the
            # seqlock read path's own counters.
            "engine": {
                "mode": ("sharded" if self._pool is not None
                         else "grouped" if self._parallelism > 1
                         else "sequential"),
                "parallelism": int(self._parallelism),
                "processes": int(self._processes),
                "chunks_scored": int(self._chunks_scored),
                "pool_chunks": int(self._pool_chunks),
                "m_aligned": bool(self._m_aligned),
                "worker_restarts":
                    int(self._pool.restarts) if self._pool is not None
                    else 0,
                "wal_pipeline": self._committer is not None,
            },
            "read_view": {
                "seq": int(self._read_view.seq),
                "retries": int(self._read_view.retries),
            },
        }
        if self._checkpointer is not None:
            stats["durability"] = {
                "snapshots_written":
                    int(self._checkpointer.snapshots_written),
                "last_snapshot_position":
                    int(self._last_snapshot_position),
                "wal_appended": int(self._wal.appended),
                "wal_segment": self._wal.active_path.name,
                "wal_pending": len(self._pending_entries),
                "snapshot_failures": int(self._snapshot_failures),
                "wal_pipelined_groups":
                    int(self._committer.committed_groups)
                    if self._committer is not None else 0,
                "wal_inflight_requests":
                    int(self._committer.inflight_requests)
                    if self._committer is not None else 0,
            }
        if self._resumed_from is not None:
            stats["resumed_from"] = self._resumed_from
        return stats

    def _check_vertex(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise ProtocolError(
                f"vertex must be an integer, got {value!r}")
        if not 0 <= value < self.graph.num_vertices:
            raise ProtocolError(
                f"vertex {value} is outside this graph's id range "
                f"[0, {self.graph.num_vertices})",
                code="unknown-vertex")
        return value

    def _parse_placement(self, item: Any) -> tuple[int, list[int] | None]:
        if isinstance(item, dict):
            vertex = self._check_vertex(item.get("vertex"))
            neighbors = item.get("neighbors")
        else:
            vertex = self._check_vertex(item)
            neighbors = None
        if neighbors is None:
            return vertex, None
        if not isinstance(neighbors, list):
            raise ProtocolError(
                f"neighbors must be a list of vertex ids or null, got "
                f"{type(neighbors).__name__}")
        return vertex, [self._check_vertex(u) for u in neighbors]

    def _parse_deadline(self, request: dict[str, Any]) -> float | None:
        """The request's ``deadline_ms`` budget as an absolute monotonic
        deadline (revision 1.1; absent = best-effort, the 1.0 behavior)."""
        value = request.get("deadline_ms")
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or value < 0:
            raise ProtocolError(
                f"deadline_ms must be a non-negative number, got "
                f"{value!r}")
        return time.monotonic() + float(value) / 1000.0

    def _op_place(self, items: list[Any], *,
                  deadline: float | None = None) -> list[dict[str, Any]]:
        placements = [self._parse_placement(item) for item in items]
        work = _Work("place", placements, deadline=deadline)
        self._submit(work)
        work.event.wait()
        if work.error is not None:
            raise ProtocolError(work.error[1], code=work.error[0])
        return work.results

    def _op_snapshot(self) -> dict[str, Any]:
        work = _Work("snapshot", [])
        self._submit(work)
        work.event.wait()
        if work.error is not None:
            raise ProtocolError(work.error[1], code=work.error[0])
        return work.results

    def _submit(self, work: _Work) -> None:
        if self._draining.is_set():
            raise ProtocolError(
                "server is draining; no new placements accepted",
                code="draining")
        if work.kind == "recover":
            # Recovery must reach the engine even when admission would
            # shed everything else; only the hard queue bound applies.
            try:
                self._queue.put_nowait(work)
            except queue.Full:
                raise ProtocolError(
                    f"engine queue is full ({self._queue.maxsize} "
                    f"requests); retry shortly",
                    code="backpressure") from None
            return
        if not self._health.allows_mutation:
            self._admission.count_shed("read_only")
            raise ProtocolError(
                f"server is {self._health.state}; mutations are rejected "
                f"(lookups/stats/health still served)",
                code="read_only")
        if work.kind == "place":
            deadline_remaining = None
            if work.deadline is not None:
                deadline_remaining = work.deadline - time.monotonic()
            # Pipelined commits hold acks beyond the queue: requests
            # riding an in-flight fsync are invisible to qsize() but
            # very much ahead of this one, so the lag estimate counts
            # them too.
            inflight = self._committer.inflight_requests \
                if self._committer is not None else 0
            decision = self._admission.admit(
                self._queue.qsize(),
                deadline_remaining=deadline_remaining,
                inflight=inflight)
            if decision is not None:
                self._admission.count_shed(decision.code)
                raise ProtocolError(decision.message, code=decision.code)
        try:
            self._queue.put_nowait(work)
        except queue.Full:
            if work.kind == "place":
                self._admission.count_shed("backpressure")
            raise ProtocolError(
                f"engine queue is full "
                f"({self._queue.maxsize} requests); retry shortly",
                code="backpressure") from None
        if work.kind == "place":
            self._admission.count_accept()

    # -- lifecycle -----------------------------------------------------
    def request_shutdown(self) -> None:
        """Signal-handler-safe shutdown trigger; :meth:`wait` returns."""
        self._shutdown_requested.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until :meth:`request_shutdown` (the CLI's foreground
        loop); returns True when shutdown was requested."""
        return self._shutdown_requested.wait(timeout)

    def close(self, *, timeout: float = 30.0) -> None:
        """Graceful drain: stop intake, finish the queue, snapshot, stop.

        Idempotent; also invoked by ``with PlacementService.start(...)``
        blocks and the CLI's SIGTERM handler.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        self._draining.set()
        self._health.transition(DRAINING, "shutdown")
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        engine_alive = any(t.name == "placement-engine" and t.is_alive()
                           for t in self._threads)
        if engine_alive:
            self._queue.put(_STOP)
            for thread in self._threads:
                if thread.name == "placement-engine":
                    thread.join(timeout)
        if self._committer is not None:
            # Engine is drained; flush the committer's in-flight groups
            # (their acks release) before touching the WAL ourselves.
            self._committer.stop()
        if self._wal is not None and self._pending_entries:
            # Last chance to make unflushed entries durable; best-effort
            # only — the requests they belong to were already failed, so
            # a still-broken log loses nothing that was promised.
            try:
                self._wal.append_batch(list(self._pending_entries))
                self._pending_entries.clear()
            except Exception:
                pass
        if (self._checkpointer is not None
                and self._position > self._last_snapshot_position):
            try:
                with self._state_lock:
                    self._snapshot_now()
            except Exception:
                # A failing disk must not turn graceful shutdown into a
                # crash; durable state is whatever already reached disk.
                pass
        if self._wal is not None:
            self._wal.close()
        self._teardown_pool()
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        self._shutdown_requested.set()

    def __enter__(self) -> "PlacementService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
