"""Placement write-ahead log: the service's ack-durability story.

A batch pass can always be re-run; a *service* cannot — once the server
acks a ``place`` response, the client may act on that partition id, so a
crash must never forget it.  Snapshots alone cannot give that guarantee
(they are periodic), so the engine pairs them with a group-commit WAL:

1. apply the drained batch to the in-memory partitioner state;
2. append one JSON line per placement to the active WAL segment,
   ``flush`` + ``fsync`` once for the whole batch;
3. only then release the acks.

On a crash, every acked placement is therefore either inside the latest
snapshot or on fsynced WAL lines after it; :func:`replay_entries` feeds
those lines back through the partitioner and the restarted server
answers ``lookup`` identically.  A torn final line (the crash landed
mid-``write``) belongs to placements that were never acked, so the
replay parser silently stops there.

Record format — one compact JSON object per line::

    {"s": 1041, "v": 1041, "n": null, "p": 3}

``s`` is the global placement sequence number (the service position
*before* this placement), ``v`` the vertex, ``p`` the committed
partition id, and ``n`` the explicit out-neighbor list the client sent —
``null`` when the client deferred to the loaded graph's own adjacency
(the common case, which keeps WAL lines a few bytes instead of
re-serializing CSR rows).  Grouped engines (``parallelism M > 1``)
additionally stamp ``"g"``, the scoring-group id — see
:class:`WalEntry`; sequential-engine lines never carry it.

Segments are named ``wal-<base:012d>.jsonl`` where ``base`` is the
service position at segment creation; the log rotates to a fresh segment
at every snapshot so :meth:`PlacementLog.prune` can drop segments wholly
covered by the latest snapshot without rewriting files.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

__all__ = ["PlacementLog", "WalEntry", "replay_entries", "wal_segments"]

_SEGMENT_RE = re.compile(r"^wal-(\d+)\.jsonl$")


@dataclass(frozen=True)
class WalEntry:
    """One durable placement: sequence, vertex, neighbors, partition.

    ``group`` is the scoring-group id for placements committed by a
    grouped (``parallelism M > 1``) engine: every entry scored against
    the same group-start state carries the same id, and replay re-scores
    whole groups at once so the restarted server verifies the logged
    partition ids under the discipline that produced them.  ``None``
    (and absent from the JSON line) for the sequential engine, keeping
    M=1 WAL bytes identical to every earlier release.
    """

    seq: int
    vertex: int
    neighbors: list[int] | None
    pid: int
    group: int | None = None


def segment_path(directory: str | Path, base: int) -> Path:
    """Canonical segment filename for a segment starting at ``base``."""
    return Path(directory) / f"wal-{base:012d}.jsonl"


def wal_segments(directory: str | Path) -> list[tuple[int, Path]]:
    """All ``(base, path)`` WAL segments in ``directory``, base-ordered."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _SEGMENT_RE.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    found.sort()
    return found


class PlacementLog:
    """Append-only, fsync-on-batch placement log with snapshot rotation."""

    def __init__(self, directory: str | Path, *, start: int = 0,
                 fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._fh = None
        self.appended = 0
        self.rotate(start)

    @property
    def active_path(self) -> Path:
        """The segment currently receiving appends."""
        return self._path

    def append_batch(self, entries: list[WalEntry]) -> None:
        """Durably append ``entries``; returns only once they are on disk.

        One ``write``/``flush``/``fsync`` triple for the whole batch —
        the group commit that makes per-placement durability affordable
        at service throughput.
        """
        if not entries:
            return
        lines = []
        for e in entries:
            obj = {"s": e.seq, "v": e.vertex, "n": e.neighbors, "p": e.pid}
            if e.group is not None:
                obj["g"] = e.group
            lines.append(json.dumps(obj, separators=(",", ":")))
        self._fh.write("\n".join(lines) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.appended += len(entries)

    def rotate(self, base: int) -> Path:
        """Start a fresh segment at service position ``base``.

        Called at boot and after every snapshot, so each segment's lines
        all carry sequence numbers ``>= base`` and the pruning rule in
        :meth:`prune` stays a whole-file decision.
        """
        if self._fh is not None:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()
        self._path = segment_path(self.directory, base)
        # Append mode: re-opening an existing base (boot after a crash
        # that preceded any snapshot) must not clobber durable lines.
        self._fh = open(self._path, "a", encoding="utf-8")
        return self._path

    def prune(self, snapshot_position: int) -> int:
        """Drop segments wholly covered by a snapshot at ``position``.

        A segment is removable when the *next* segment starts at or
        below the snapshot position (so every line it holds has
        ``seq < snapshot_position``).  The active segment is never
        removed.  Returns the number of segments deleted.
        """
        segments = wal_segments(self.directory)
        removed = 0
        for (base, path), (next_base, _) in zip(segments, segments[1:]):
            if next_base <= snapshot_position and path != self._path:
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass  # pruning is best-effort; never fail the batch
        return removed

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            if self.fsync:
                os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None


def replay_entries(directory: str | Path, *,
                   from_position: int = 0) -> Iterator[WalEntry]:
    """Yield logged placements with ``seq >= from_position``, in order.

    Walks every segment base-ordered; lines below ``from_position`` (the
    restored snapshot already contains them) are skipped.  A torn or
    corrupt trailing line ends the replay silently — by the ack protocol
    it was never acknowledged — but corruption *followed by* further
    valid lines, or a sequence gap, raises ``ValueError``: that is real
    damage, not a mid-write crash, and resuming past it would serve
    wrong lookups.
    """
    expected = None
    pending_error: str | None = None
    for _, path in wal_segments(directory):
        with open(path, "rb") as fh:
            raw = fh.read()
        for line in raw.split(b"\n"):
            if not line.strip():
                continue
            if pending_error is not None:
                raise ValueError(pending_error)
            try:
                obj = json.loads(line)
                group = obj.get("g")
                entry = WalEntry(seq=int(obj["s"]), vertex=int(obj["v"]),
                                 neighbors=obj["n"], pid=int(obj["p"]),
                                 group=None if group is None else int(group))
            except (ValueError, KeyError, TypeError):
                # Possibly the torn final line; only an error if more
                # valid lines follow.
                pending_error = (
                    f"corrupt WAL line in {path.name} is followed by "
                    f"further data; refusing to replay past it")
                continue
            if entry.seq < from_position:
                expected = entry.seq + 1
                continue
            if expected is None:
                expected = from_position
            if entry.seq != expected:
                raise ValueError(
                    f"WAL sequence gap in {path.name}: expected "
                    f"{expected}, found {entry.seq}")
            expected = entry.seq + 1
            yield entry
