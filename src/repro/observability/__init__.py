"""Streaming observability: counters, probes, and trace sinks.

The paper's evidence for SPN/SPNL is end-of-run aggregates (Tables III–IV),
but the *trajectory* of a streaming pass — how ECR, load skew, and the Γ
expectation-table footprint evolve placement by placement — is what guides
optimisation (2PS and the web-graph clustering partitioners both motivate
their designs with mid-stream curves).  This package provides that
instrumentation for the whole pipeline:

* :class:`Instrumentation` — the hub: named counters, gauges, monotonic
  timers, and a fan-out ``emit()`` to pluggable sinks;
* :class:`StreamProbe` — a windowed probe that snapshots per-partition
  loads, a running ECR estimate, the score margin (argmax vs. runner-up),
  and the Γ-table footprint every N placements;
* sinks — :class:`MemorySink` (ring buffer), :class:`JsonlSink`
  (JSON-lines trace file, a first-class bench artifact), and
  :class:`ProgressSink` (human-readable progress lines);
* :mod:`~repro.observability.schema` — the documented trace-record schema
  plus :func:`validate_record`, which the test suite runs over every
  emitted record.

Instrumentation is strictly opt-in: every hook in the pipeline accepts
``instrumentation=None`` (the default) and takes the exact pre-existing
code path when absent, so uninstrumented runs are byte-identical to the
un-instrumented implementation.
"""

from .instrumentation import Instrumentation, Timer
from .probe import StreamProbe
from .schema import TRACE_SCHEMA, TraceSchemaError, validate_record
from .sinks import JsonlSink, MemorySink, ProgressSink, TraceSink

__all__ = [
    "Instrumentation",
    "JsonlSink",
    "MemorySink",
    "ProgressSink",
    "StreamProbe",
    "TRACE_SCHEMA",
    "Timer",
    "TraceSchemaError",
    "TraceSink",
    "validate_record",
]
