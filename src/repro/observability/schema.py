"""The documented trace-record schema and its validator.

Every record the pipeline emits is a flat JSON object with a ``type``
discriminator.  The schema below is the contract consumed by trace
tooling (and enforced by the test suite over every emitted record):

``stream_probe`` — one windowed snapshot of a streaming pass:
    seq, placements, window, elapsed_seconds, loads, edge_loads,
    load_skew, ecr_estimate, resolved_edges, cut_edges,
    score_margin_mean, score_margin_min, partitioner, plus optional
    gauges (``expectation_table_entries``, ``expectation_table_bytes``).

``stream_summary`` — one terminal record per instrumented pass:
    seq, placements, elapsed_seconds, ecr_estimate, capacity_overflows,
    partitioner.

``bsp_superstep`` — one record per BSP superstep:
    seq, superstep, active_vertices, local_messages, remote_messages,
    elapsed_seconds, program.

``parallel_batch`` — one record per simulated-parallel batch:
    seq, batch, batch_size, delayed, placements.

``checkpoint`` — one record per snapshot written by the checkpointing
    driver: seq, position, placements, path, elapsed_seconds,
    partitioner.

``resume`` — one record when a pass restarts from a snapshot:
    seq, position, placements, path, partitioner.

``worker_restart`` — a supervised parallel worker died and was
    restarted: seq, worker, restarts, error, backoff_seconds.

``quarantine`` — a malformed input record was diverted by a lenient
    ingestion policy: seq, source, line, reason.

``ingest_phase`` — one record per completed ingest stage (parse, cache
    write, cache hit): seq, phase, source, elapsed_seconds, plus
    optional ``records`` / ``bytes`` volume gauges.

``bench_compare`` — one record per baseline-vs-candidate benchmark
    comparison (the regression gate): seq, bench, baseline, candidate,
    improved, unchanged, regressed, verdict, fingerprint_match.

``bench_profile`` — one record per profiled bench stage (the opt-in
    ``--profile`` pass): seq, bench, stage, mode, pstats_path,
    profiled_seconds, plus the optional gauges ``overhead_pct``
    (profiled pass vs the unprofiled median), ``top_function`` (the
    cumulative-time leader), and ``identical`` (the profiled pass
    reproduced the unprofiled reference output).

``service_request`` — one record per engine batch processed by the
    placement service: seq, op, count, queue_depth, elapsed_seconds,
    ok, plus the optional gauges ``fused`` (placements that went
    through the coalesced fast kernel) and ``shed`` (admission
    rejections counted since the previous record).

``health_transition`` — the placement service's health-state machine
    moved: seq, from_state, to_state, reason (free text naming the
    trigger, e.g. ``wal_append_failed``).

Field specs are ``(types, required)``.  ``validate_record`` raises
:class:`TraceSchemaError` on an unknown type, a missing required field,
an unknown field, or a type mismatch; ``None`` is allowed exactly for
the fields marked nullable below.
"""

from __future__ import annotations

from typing import Any

__all__ = ["TRACE_SCHEMA", "TraceSchemaError", "validate_record"]

_NUM = (int, float)
_INT = (int,)
_STR = (str,)
_LIST = (list,)
_BOOL = (bool,)

#: record type -> field -> (allowed value types, required, nullable)
TRACE_SCHEMA: dict[str, dict[str, tuple[tuple[type, ...], bool, bool]]] = {
    "stream_probe": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "placements": (_INT, True, False),
        "window": (_INT, True, False),
        "elapsed_seconds": (_NUM, True, False),
        "loads": (_LIST, True, False),
        "edge_loads": (_LIST, True, False),
        "load_skew": (_NUM, True, False),
        "ecr_estimate": (_NUM, True, True),
        "resolved_edges": (_INT, True, False),
        "cut_edges": (_INT, True, False),
        "score_margin_mean": (_NUM, True, True),
        "score_margin_min": (_NUM, True, True),
        "partitioner": (_STR, True, False),
        "expectation_table_entries": (_INT, False, True),
        "expectation_table_bytes": (_INT, False, True),
        "eta_mean": (_NUM, False, True),
    },
    "stream_summary": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "placements": (_INT, True, False),
        "elapsed_seconds": (_NUM, True, False),
        "ecr_estimate": (_NUM, True, True),
        "resolved_edges": (_INT, True, False),
        "cut_edges": (_INT, True, False),
        "capacity_overflows": (_INT, True, False),
        "partitioner": (_STR, True, False),
        "expectation_table_entries": (_INT, False, True),
        "expectation_table_bytes": (_INT, False, True),
    },
    "bsp_superstep": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "superstep": (_INT, True, False),
        "active_vertices": (_INT, True, False),
        "local_messages": (_INT, True, False),
        "remote_messages": (_INT, True, False),
        "elapsed_seconds": (_NUM, True, False),
        "program": (_STR, True, False),
    },
    "parallel_batch": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "batch": (_INT, True, False),
        "batch_size": (_INT, True, False),
        "delayed": (_INT, True, False),
        "placements": (_INT, True, False),
    },
    "checkpoint": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "position": (_INT, True, False),
        "placements": (_INT, True, False),
        "path": (_STR, True, False),
        "elapsed_seconds": (_NUM, True, False),
        "partitioner": (_STR, True, False),
    },
    "resume": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "position": (_INT, True, False),
        "placements": (_INT, True, False),
        "path": (_STR, True, False),
        "partitioner": (_STR, True, False),
    },
    "worker_restart": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "worker": (_INT, True, False),
        "restarts": (_INT, True, False),
        "error": (_STR, True, False),
        "backoff_seconds": (_NUM, True, False),
    },
    "quarantine": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "source": (_STR, True, False),
        "line": (_INT, True, False),
        "reason": (_STR, True, False),
    },
    "ingest_phase": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "phase": (_STR, True, False),
        "source": (_STR, True, False),
        "elapsed_seconds": (_NUM, True, False),
        "records": (_INT, False, True),
        "bytes": (_INT, False, True),
    },
    "service_request": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "op": (_STR, True, False),
        "count": (_INT, True, False),
        "queue_depth": (_INT, True, False),
        "elapsed_seconds": (_NUM, True, False),
        "ok": (_BOOL, True, False),
        "fused": (_INT, False, True),
        "shed": (_INT, False, True),
    },
    "health_transition": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "from_state": (_STR, True, False),
        "to_state": (_STR, True, False),
        "reason": (_STR, True, False),
    },
    "bench_compare": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "bench": (_STR, True, False),
        "baseline": (_STR, True, False),
        "candidate": (_STR, True, False),
        "improved": (_INT, True, False),
        "unchanged": (_INT, True, False),
        "regressed": (_INT, True, False),
        "verdict": (_STR, True, False),
        "fingerprint_match": (_BOOL, True, False),
    },
    "bench_profile": {
        "type": (_STR, True, False),
        "seq": (_INT, True, False),
        "bench": (_STR, True, False),
        "stage": (_STR, True, False),
        "mode": (_STR, True, False),
        "pstats_path": (_STR, True, False),
        "profiled_seconds": (_NUM, True, False),
        "overhead_pct": (_NUM, False, True),
        "top_function": (_STR, False, True),
        "identical": (_BOOL, False, True),
    },
}


class TraceSchemaError(ValueError):
    """A trace record does not conform to :data:`TRACE_SCHEMA`."""


def validate_record(record: dict[str, Any]) -> None:
    """Check one emitted record against the documented schema.

    Raises :class:`TraceSchemaError` with a precise message on the first
    violation; returns ``None`` for a conforming record.
    """
    if not isinstance(record, dict):
        raise TraceSchemaError(f"record must be a dict, got {type(record)}")
    kind = record.get("type")
    if kind not in TRACE_SCHEMA:
        raise TraceSchemaError(
            f"unknown record type {kind!r}; known: "
            f"{sorted(TRACE_SCHEMA)}")
    spec = TRACE_SCHEMA[kind]
    for field, (types, required, _nullable) in spec.items():
        if required and field not in record:
            raise TraceSchemaError(
                f"{kind}: missing required field {field!r}")
    for field, value in record.items():
        if field not in spec:
            raise TraceSchemaError(f"{kind}: unknown field {field!r}")
        types, _required, nullable = spec[field]
        if value is None:
            if not nullable:
                raise TraceSchemaError(
                    f"{kind}: field {field!r} may not be null")
            continue
        # bool is an int subclass; never accept it for numeric fields
        # (only where the spec lists bool itself).
        if (isinstance(value, bool) and bool not in types) \
                or not isinstance(value, types):
            raise TraceSchemaError(
                f"{kind}: field {field!r} has type "
                f"{type(value).__name__}, expected one of "
                f"{[t.__name__ for t in types]}")
