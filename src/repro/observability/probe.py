"""Windowed mid-stream quality probe (the tentpole of the trace layer).

:class:`StreamProbe` observes every placement of a streaming pass and
emits one ``stream_probe`` record per window of ``every`` placements,
plus a terminal ``stream_summary``.  Each snapshot carries:

* per-partition vertex/edge loads and the vertex load skew
  ``max_i |V_i| · K / placed`` (the running δ_v);
* a **running ECR estimate**: among *resolved* edges — out-edges whose
  target was already placed when the source streamed — the fraction that
  crossed partitions.  This is the standard mid-stream proxy for ECR
  (an edge to a still-unplaced neighbor cannot be scored yet without
  buffering in-adjacency, which a one-pass streamer does not have);
* the **score margin** — argmax score minus runner-up score among
  eligible partitions — a per-decision confidence signal (a window of
  near-zero margins means the heuristic is effectively guessing);
* the Γ expectation-table footprint, via the partitioner's optional
  ``_probe_gauges()`` hook.

Cost model: the probe reuses the neighbor partition counts the scoring
loop already computed (see
``PartitionState.consume_neighbor_counts``), so per-placement overhead
is O(K) bookkeeping, and the O(K)-sized snapshot work only runs once per
window.
"""

from __future__ import annotations

import math
import time
from typing import Any

import numpy as np

from ..partitioning.assignment import UNASSIGNED

__all__ = ["StreamProbe"]


class StreamProbe:
    """Accumulates placement telemetry and emits windowed snapshots.

    Parameters
    ----------
    instrumentation:
        The :class:`~repro.observability.instrumentation.Instrumentation`
        hub records are emitted through.
    state:
        The live :class:`~repro.partitioning.base.PartitionState` of the
        pass being observed.
    partitioner:
        The partitioner driving the pass; used for its display name and
        the optional ``_probe_gauges()`` hook.
    every:
        Window size in placements (N of "snapshot every N placements").
    """

    def __init__(self, instrumentation: Any, state: Any, *,
                 partitioner: Any = None, every: int = 1000) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.instrumentation = instrumentation
        self.state = state
        self.partitioner = partitioner
        self.every = every
        self.placements = 0
        self.windows_emitted = 0
        self.resolved_edges = 0
        self.cut_edges = 0
        self._window_margin_sum = 0.0
        self._window_margin_min = math.inf
        self._window_margin_n = 0
        self._start = time.perf_counter()

    @property
    def partitioner_name(self) -> str:
        if self.partitioner is None:
            return "?"
        return getattr(self.partitioner, "name",
                       type(self.partitioner).__name__)

    # ------------------------------------------------------------------
    def observe(self, record: Any, pid: int,
                margin: float | None = None) -> None:
        """Account one committed placement (call *after* the commit).

        ``margin`` is the argmax-vs-runner-up score gap when the caller
        computed one (``None`` when there was no runner-up to compare
        against); ``choose_with_margin`` guarantees it finite, so no
        NaN/inf screening happens here.
        """
        neighbors = record.neighbors
        if len(neighbors):
            memo = self.state.consume_neighbor_counts(neighbors)
            if memo is not None:
                counts, resolved = memo
                cut = resolved - int(counts[pid])
            else:
                # Scoring didn't tally neighbors (e.g. Hash/Range):
                # reconstruct the pre-commit view, excluding a possible
                # self-loop (v is already routed by now).
                state = self.state
                parts = state.route[neighbors[neighbors != record.vertex]]
                placed = parts[parts != UNASSIGNED]
                resolved = int(placed.size)
                cut = int(np.count_nonzero(placed != pid))
            self.resolved_edges += resolved
            self.cut_edges += cut
        if margin is not None:
            self._window_margin_sum += margin
            self._window_margin_n += 1
            if margin < self._window_margin_min:
                self._window_margin_min = margin
        self.placements += 1
        if self.placements % self.every == 0:
            self._emit_window()

    # ------------------------------------------------------------------
    def _gauges(self) -> dict[str, Any]:
        hook = getattr(self.partitioner, "_probe_gauges", None)
        if hook is None:
            return {}
        return dict(hook())

    def _load_skew(self) -> float:
        state = self.state
        placed = state.placed_vertices
        if placed == 0:
            return 1.0
        ideal = placed / state.num_partitions
        return float(state.vertex_counts.max() / ideal)

    def ecr_estimate(self) -> float | None:
        """Cut fraction over the resolved edges so far (None before any)."""
        if self.resolved_edges == 0:
            return None
        return self.cut_edges / self.resolved_edges

    def _emit_window(self) -> None:
        self.windows_emitted += 1
        state = self.state
        margin_mean = (self._window_margin_sum / self._window_margin_n
                       if self._window_margin_n else None)
        margin_min = (self._window_margin_min
                      if self._window_margin_n else None)
        record: dict[str, Any] = {
            "type": "stream_probe",
            "placements": self.placements,
            "window": self.windows_emitted,
            "elapsed_seconds": time.perf_counter() - self._start,
            "loads": state.vertex_counts.tolist(),
            "edge_loads": state.edge_counts.tolist(),
            "load_skew": self._load_skew(),
            "ecr_estimate": self.ecr_estimate(),
            "resolved_edges": self.resolved_edges,
            "cut_edges": self.cut_edges,
            "score_margin_mean": margin_mean,
            "score_margin_min": margin_min,
            "partitioner": self.partitioner_name,
        }
        record.update(self._gauges())
        self.instrumentation.emit(record)
        self._window_margin_sum = 0.0
        self._window_margin_min = math.inf
        self._window_margin_n = 0

    def finish(self, elapsed_seconds: float | None = None) -> None:
        """Emit the terminal ``stream_summary`` and update hub counters."""
        hub = self.instrumentation
        summary: dict[str, Any] = {
            "type": "stream_summary",
            "placements": self.placements,
            "elapsed_seconds": (elapsed_seconds
                                if elapsed_seconds is not None
                                else time.perf_counter() - self._start),
            "ecr_estimate": self.ecr_estimate(),
            "resolved_edges": self.resolved_edges,
            "cut_edges": self.cut_edges,
            "capacity_overflows": int(
                getattr(self.state, "capacity_overflows", 0)),
            "partitioner": self.partitioner_name,
        }
        gauges = self._gauges()
        for key in ("expectation_table_entries", "expectation_table_bytes"):
            if key in gauges:
                summary[key] = gauges[key]
        hub.emit(summary)
        hub.count("stream.placements", self.placements)
        hub.count("stream.windows", self.windows_emitted)
        hub.gauge("stream.ecr_estimate", self.ecr_estimate())
        hub.gauge("stream.load_skew", self._load_skew())
