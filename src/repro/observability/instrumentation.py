"""The instrumentation hub: counters, gauges, timers, and record fan-out.

One :class:`Instrumentation` instance travels with a run (a partitioning
pass, a bench record, a BSP job) and is threaded through the pipeline via
optional ``instrumentation=`` keyword hooks.  Components call

* ``count(name, n)`` for monotonically growing tallies (placements,
  delayed records, remote messages),
* ``gauge(name, value)`` for point-in-time readings (Γ-table bytes,
  queue depth),
* ``timer(name)`` as a context manager accumulating monotonic wall time
  per labelled region, and
* ``emit(record)`` to fan a structured trace record out to every sink.

The hub is intentionally permissive about sinks that fail: a broken sink
is detached (and remembered in ``sink_errors``) rather than crashing the
instrumented run — observability must never take down the pipeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from .sinks import TraceSink

__all__ = ["Instrumentation", "Timer"]


class Timer:
    """Accumulated monotonic wall time for one named region."""

    __slots__ = ("name", "total_seconds", "count", "_started")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_seconds = 0.0
        self.count = 0
        self._started: float | None = None

    def start(self) -> None:
        self._started = time.perf_counter()

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError(f"timer {self.name!r} was not started")
        elapsed = time.perf_counter() - self._started
        self._started = None
        self.total_seconds += elapsed
        self.count += 1
        return elapsed

    def __repr__(self) -> str:
        return (f"Timer({self.name!r}, total={self.total_seconds:.6f}s, "
                f"count={self.count})")


class Instrumentation:
    """Hub for named counters/gauges/timers plus sink fan-out.

    Parameters
    ----------
    sinks:
        Iterable of :class:`~repro.observability.sinks.TraceSink`; records
        passed to :meth:`emit` reach every sink in order.
    probe_every:
        Default window size (placements per snapshot) for
        :class:`~repro.observability.probe.StreamProbe` instances built
        through :meth:`stream_probe`.
    """

    def __init__(self, sinks: Any = (), *, probe_every: int = 1000) -> None:
        if probe_every < 1:
            raise ValueError("probe_every must be >= 1")
        self.sinks: list[TraceSink] = list(sinks)
        self.probe_every = probe_every
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, Any] = {}
        self.timers: dict[str, Timer] = {}
        self.records_emitted = 0
        self.sink_errors: list[tuple[TraceSink, BaseException]] = []

    # -- scalar instruments --------------------------------------------
    def count(self, name: str, n: int = 1) -> int:
        """Bump counter ``name`` by ``n``; returns the new total."""
        total = self.counters.get(name, 0) + n
        self.counters[name] = total
        return total

    def gauge(self, name: str, value: Any) -> None:
        """Record the latest point-in-time ``value`` for ``name``."""
        self.gauges[name] = value

    @contextmanager
    def timer(self, name: str) -> Iterator[Timer]:
        """Accumulate monotonic wall time under ``name``."""
        t = self.timers.get(name)
        if t is None:
            t = self.timers[name] = Timer(name)
        t.start()
        try:
            yield t
        finally:
            t.stop()

    # -- record fan-out ------------------------------------------------
    def emit(self, record: dict[str, Any]) -> None:
        """Send one trace record to every attached sink.

        A sink that raises is detached so one bad consumer cannot abort
        an instrumented run; the failure is kept in ``sink_errors``.
        """
        self.records_emitted += 1
        record.setdefault("seq", self.records_emitted)
        for sink in list(self.sinks):
            try:
                sink.emit(record)
            except Exception as exc:
                self.sinks.remove(sink)
                self.sink_errors.append((sink, exc))

    def stream_probe(self, partitioner: Any, state: Any,
                     *, every: int | None = None) -> "Any":
        """Build a :class:`StreamProbe` wired to this hub."""
        from .probe import StreamProbe
        return StreamProbe(self, state, partitioner=partitioner,
                           every=every if every is not None
                           else self.probe_every)

    # -- lifecycle -----------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Flat dict of every counter, gauge, and timer total."""
        out: dict[str, Any] = {}
        for name, value in self.counters.items():
            out[f"counter.{name}"] = value
        for name, value in self.gauges.items():
            out[f"gauge.{name}"] = value
        for name, t in self.timers.items():
            out[f"timer.{name}.seconds"] = t.total_seconds
            out[f"timer.{name}.count"] = t.count
        return out

    def close(self) -> None:
        """Close every sink (idempotent)."""
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as exc:
                self.sink_errors.append((sink, exc))

    def __enter__(self) -> "Instrumentation":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
