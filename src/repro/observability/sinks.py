"""Pluggable trace sinks for the instrumentation hub.

A sink receives every record the hub emits (plain JSON-serialisable
dicts; see :mod:`repro.observability.schema`).  Three implementations
cover the common uses:

* :class:`MemorySink` — bounded in-memory ring buffer, for tests and
  interactive inspection;
* :class:`JsonlSink` — one JSON object per line; the trace file is a
  first-class bench artifact alongside the ``BENCH_*.json`` reports;
* :class:`ProgressSink` — a human-readable progress line per probe
  window, for watching long runs.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from pathlib import Path
from typing import IO, Any, Protocol, runtime_checkable

__all__ = ["TraceSink", "MemorySink", "JsonlSink", "ProgressSink"]


@runtime_checkable
class TraceSink(Protocol):
    """Anything that can receive emitted trace records."""

    def emit(self, record: dict[str, Any]) -> None:
        """Consume one trace record (must not mutate it)."""

    def close(self) -> None:
        """Flush and release resources; further emits are undefined."""


class MemorySink:
    """Keep the last ``capacity`` records in a ring buffer."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)

    @property
    def capacity(self) -> int:
        return self._ring.maxlen

    @property
    def records(self) -> list[dict[str, Any]]:
        """The retained records, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def emit(self, record: dict[str, Any]) -> None:
        self._ring.append(record)

    def close(self) -> None:
        """No-op: records stay readable after close."""


def _to_jsonable(value: Any) -> Any:
    """Coerce NumPy scalars/arrays into plain JSON types."""
    if hasattr(value, "tolist"):  # ndarray and NumPy scalars
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, dict):
        return {k: _to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_to_jsonable(v) for v in value]
    return value


class JsonlSink:
    """Append records to a JSON-lines file (one object per line).

    The file is opened lazily on the first emit so constructing the sink
    for a run that never emits leaves no empty artifact behind.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh: IO[str] | None = None
        self.records_written = 0

    def emit(self, record: dict[str, Any]) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("w")
        json.dump(_to_jsonable(record), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class ProgressSink:
    """Render ``stream_probe`` records as single human-readable lines.

    Non-probe records are summarised by their ``type`` and any counter
    payload, so the sink stays useful for BSP/parallel traces too.
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def emit(self, record: dict[str, Any]) -> None:
        kind = record.get("type", "?")
        if kind == "stream_probe":
            ecr = record.get("ecr_estimate")
            margin = record.get("score_margin_mean")
            line = (f"[probe {record.get('partitioner', '?')}] "
                    f"{record.get('placements', 0)} placed")
            line += f" ecr~{ecr:.4f}" if ecr is not None else " ecr~n/a"
            line += f" skew={record.get('load_skew', 0.0):.3f}"
            if margin is not None:
                line += f" margin~{margin:.2f}"
            gamma = record.get("expectation_table_bytes")
            if gamma:
                line += f" Γ={gamma / 1e6:.2f}MB"
        elif kind == "stream_summary":
            line = (f"[probe {record.get('partitioner', '?')}] done: "
                    f"{record.get('placements', 0)} placed in "
                    f"{record.get('elapsed_seconds', 0.0):.3f}s")
        else:
            payload = {k: v for k, v in record.items()
                       if k not in ("type", "seq") and not
                       isinstance(v, (list, dict))}
            line = f"[{kind}] " + " ".join(
                f"{k}={v}" for k, v in payload.items())
        print(line, file=self.stream)

    def close(self) -> None:
        """No-op: the underlying stream is not owned by the sink."""
