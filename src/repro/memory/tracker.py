"""Measured memory consumption via ``tracemalloc``.

Complements the analytic models in :mod:`repro.memory.model` with real
peak-allocation numbers for the MC columns of Table IV and Figure 7(a).
``tracemalloc`` adds interpreter overhead, so PT and MC are measured in
separate runs by the benchmark harness — never simultaneously.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["PeakMemory", "trace_peak", "measure_peak"]


@dataclass
class PeakMemory:
    """Peak allocation observed inside a :func:`trace_peak` block."""

    peak_bytes: int = 0

    @property
    def peak_mb(self) -> float:
        return self.peak_bytes / 1e6


@contextmanager
def trace_peak() -> Iterator[PeakMemory]:
    """Context manager measuring the peak Python allocation inside it.

    Nested use is not supported (tracemalloc is process-global); the
    benchmark harness serializes all measured runs.
    """
    holder = PeakMemory()
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        yield holder
    finally:
        _, peak = tracemalloc.get_traced_memory()
        holder.peak_bytes = int(peak)
        if not was_tracing:
            tracemalloc.stop()


def measure_peak(fn: Callable[[], Any]) -> tuple[Any, int]:
    """Run ``fn`` and return ``(its result, peak bytes allocated)``."""
    with trace_peak() as peak:
        result = fn()
    return result, peak.peak_bytes
