"""Analytic memory models for every partitioner (paper Table IV).

The paper's space-complexity comparison:

=====================  ==========================================
Method                 Space complexity
=====================  ==========================================
LDG / FENNEL           ``O(|V| + K + max_d)``
METIS / XtraPuLP       ``≥ O(|E|)`` (whole graph + intermediates)
SPN / SPNL (X = 1)     ``O(|V| + 2K + K|V| + max_d)``
SPN / SPNL (windowed)  ``O(|V| + 3K + K|V|/X + max_d)``
=====================  ==========================================

These models convert those complexities into byte estimates with explicit
element sizes so Table IV can be regenerated numerically, independent of
the interpreter's allocation noise.  :mod:`repro.memory.tracker` provides
the complementary *measured* numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryEstimate", "streaming_baseline_bytes", "spn_bytes",
           "spnl_bytes", "offline_bytes", "ROUTE_ENTRY_BYTES",
           "COUNTER_BYTES", "SCORE_BYTES"]

ROUTE_ENTRY_BYTES = 4   # int32 partition ids
COUNTER_BYTES = 4       # int32 expectation counters
SCORE_BYTES = 8         # float64 score vectors
ADJACENCY_BYTES = 8     # int64 vertex ids in adjacency storage


@dataclass(frozen=True)
class MemoryEstimate:
    """A byte estimate with its component breakdown."""

    method: str
    total_bytes: int
    breakdown: dict

    @property
    def total_mb(self) -> float:
        return self.total_bytes / 1e6

    def as_row(self) -> dict:
        return {"method": self.method,
                "MC(MB)": round(self.total_mb, 2),
                **{k: v for k, v in self.breakdown.items()}}


def streaming_baseline_bytes(num_vertices: int, num_partitions: int,
                             max_out_degree: int,
                             method: str = "LDG") -> MemoryEstimate:
    """LDG/FENNEL local view: route table + score vector + one record."""
    breakdown = {
        "route_table": num_vertices * ROUTE_ENTRY_BYTES,
        "score_vector": num_partitions * SCORE_BYTES,
        "record_buffer": max_out_degree * ADJACENCY_BYTES,
    }
    return MemoryEstimate(method, sum(breakdown.values()), breakdown)


def spn_bytes(num_vertices: int, num_partitions: int, max_out_degree: int,
              num_shards: int = 1, method: str = "SPN") -> MemoryEstimate:
    """SPN: the LDG view plus K expectation tables of |V|/X counters."""
    base = streaming_baseline_bytes(num_vertices, num_partitions,
                                    max_out_degree, method)
    window = -(-num_vertices // max(1, num_shards))  # ceil division
    breakdown = dict(base.breakdown)
    breakdown["expectation_tables"] = (num_partitions * window
                                       * COUNTER_BYTES)
    return MemoryEstimate(method, sum(breakdown.values()), breakdown)


def spnl_bytes(num_vertices: int, num_partitions: int, max_out_degree: int,
               num_shards: int = 1) -> MemoryEstimate:
    """SPNL: SPN plus the O(2K) logical Range table and its counters."""
    base = spn_bytes(num_vertices, num_partitions, max_out_degree,
                     num_shards, method=f"SPNL(X={num_shards})")
    breakdown = dict(base.breakdown)
    # Range boundaries (K+1 ids) + |V^lt| counters (K) + η buffer (K).
    breakdown["logical_tables"] = (3 * num_partitions + 1) * SCORE_BYTES
    return MemoryEstimate(base.method, sum(breakdown.values()), breakdown)


def offline_bytes(num_vertices: int, num_edges: int,
                  method: str = "METIS",
                  hierarchy_factor: float = 2.0) -> MemoryEstimate:
    """METIS/XtraPuLP: the whole (undirected) graph plus intermediates.

    ``hierarchy_factor`` models the coarsening hierarchy (METIS) or the
    label/score arrays (XtraPuLP ≈ 1.3); both are ≥ the graph itself,
    matching the paper's ``≥ O(|E|)`` row.
    """
    graph_bytes = (2 * num_edges + num_vertices + 1) * ADJACENCY_BYTES
    breakdown = {
        "graph": graph_bytes,
        "intermediates": int(graph_bytes * (hierarchy_factor - 1.0)),
    }
    return MemoryEstimate(method, sum(breakdown.values()), breakdown)
