"""Memory accounting: analytic models (Table IV) and measured peaks."""

from .model import (
    MemoryEstimate,
    offline_bytes,
    spn_bytes,
    spnl_bytes,
    streaming_baseline_bytes,
)
from .tracker import PeakMemory, measure_peak, trace_peak

__all__ = [
    "MemoryEstimate",
    "PeakMemory",
    "measure_peak",
    "offline_bytes",
    "spn_bytes",
    "spnl_bytes",
    "streaming_baseline_bytes",
    "trace_peak",
]
